#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "redist/resort.hpp"
#include "sortlib/local_sort.hpp"
#include "sortlib/merge_sort.hpp"
#include "sortlib/partition_sort.hpp"
#include "spmd_test_util.hpp"
#include "support/rng.hpp"

using fcs_test::run_ranks;

namespace {

struct Rec {
  std::uint64_t key;
  std::uint64_t payload;
};
std::uint64_t rec_key(const Rec& r) { return r.key; }

// ---------------------------------------------------------------------------
// Local sorting

TEST(RadixPermutation, SortsRandomKeys) {
  fcs::Rng rng(1);
  std::vector<std::uint64_t> keys(10000);
  for (auto& k : keys) k = rng();
  auto order = sortlib::radix_sort_permutation(keys);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(keys[order[i - 1]], keys[order[i]]);
}

TEST(RadixPermutation, StableForDuplicates) {
  std::vector<std::uint64_t> keys = {5, 1, 5, 1, 5};
  auto order = sortlib::radix_sort_permutation(keys);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 0, 2, 4}));
}

TEST(RadixPermutation, SmallKeyRangeSkipsPasses) {
  // Keys below 256: only one digit used; result must still be sorted.
  fcs::Rng rng(2);
  std::vector<std::uint64_t> keys(5000);
  for (auto& k : keys) k = rng() & 0xff;
  auto order = sortlib::radix_sort_permutation(keys);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(keys[order[i - 1]], keys[order[i]]);
}

TEST(RadixPermutation, EmptyAndSingle) {
  EXPECT_TRUE(sortlib::radix_sort_permutation({}).empty());
  EXPECT_EQ(sortlib::radix_sort_permutation({42}),
            (std::vector<std::uint32_t>{0}));
}

TEST(SortByKey, MatchesStdSortOnBothPaths) {
  fcs::Rng rng(3);
  for (std::size_t n : {0u, 1u, 100u, 5000u}) {  // below and above radix cutoff
    std::vector<Rec> items(n);
    for (std::size_t i = 0; i < n; ++i) items[i] = {rng() % 97, i};
    sortlib::sort_by_key(items, rec_key);
    EXPECT_TRUE(sortlib::is_sorted_by_key(items, rec_key));
    // Stability: payloads ascending within equal keys.
    for (std::size_t i = 1; i < n; ++i) {
      if (items[i - 1].key == items[i].key) {
        EXPECT_LT(items[i - 1].payload, items[i].payload);
      }
    }
  }
}

TEST(MergeRuns, MergesSortedRunsInPlace) {
  std::vector<Rec> items;
  std::vector<std::size_t> starts;
  fcs::Rng rng(4);
  for (int run = 0; run < 5; ++run) {
    starts.push_back(items.size());
    std::vector<std::uint64_t> keys(1 + rng.uniform_index(50));
    for (auto& k : keys) k = rng() % 1000;
    std::sort(keys.begin(), keys.end());
    for (auto k : keys) items.push_back({k, 0});
  }
  sortlib::merge_runs(items, starts, rec_key);
  EXPECT_TRUE(sortlib::is_sorted_by_key(items, rec_key));
}

TEST(MergeRuns, SingleAndEmptyRuns) {
  std::vector<Rec> empty;
  sortlib::merge_runs(empty, {0}, rec_key);
  EXPECT_TRUE(empty.empty());
  std::vector<Rec> one = {{3, 0}, {5, 0}};
  sortlib::merge_runs(one, {0}, rec_key);
  EXPECT_EQ(one[0].key, 3u);
}

// ---------------------------------------------------------------------------
// Batcher schedule

TEST(BatcherSchedule, SortsAllZeroOnePatterns) {
  // 0-1 principle: a comparator network sorts everything iff it sorts all
  // 2^n 0-1 sequences. Verify exhaustively for small n.
  for (int n = 1; n <= 10; ++n) {
    const auto schedule = sortlib::batcher_schedule(n);
    for (unsigned pattern = 0; pattern < (1u << n); ++pattern) {
      std::vector<int> v(n);
      for (int i = 0; i < n; ++i) v[i] = (pattern >> i) & 1;
      for (const auto& [a, b] : schedule)
        if (v[a] > v[b]) std::swap(v[a], v[b]);
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()))
          << "n=" << n << " pattern=" << pattern;
    }
  }
}

TEST(BatcherSchedule, ComparatorCountIsLogSquared) {
  const auto s = sortlib::batcher_schedule(256);
  // Merge exchange uses ~ n/4 log^2 n comparators; sanity bounds.
  EXPECT_GT(s.size(), 1000u);
  EXPECT_LT(s.size(), 10000u);
  EXPECT_TRUE(sortlib::batcher_schedule(1).empty());
}

// ---------------------------------------------------------------------------
// Parallel sorts

struct SortCase {
  int ranks;
  int elements_per_rank;  // average; actual counts vary per test
};

class ParallelSort : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelSort,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

std::vector<Rec> random_records(int rank, std::size_t n, std::uint64_t key_mod,
                                std::uint64_t seed) {
  fcs::Rng rng = fcs::Rng(seed).stream(static_cast<std::uint64_t>(rank));
  std::vector<Rec> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].key = rng() % key_mod;
    items[i].payload = (static_cast<std::uint64_t>(rank) << 32) | i;
  }
  return items;
}

// Verify a global sort result: locally sorted, boundaries ordered, and the
// global multiset of (key, payload) pairs unchanged.
void expect_globally_sorted(mpi::Comm& c, const std::vector<Rec>& before,
                            const std::vector<Rec>& after,
                            bool check_balanced) {
  EXPECT_TRUE(sortlib::is_sorted_by_key(after, rec_key));

  // Boundary order between ranks.
  struct KeyCount {
    std::uint64_t any, max;
  };
  KeyCount mine{after.empty() ? 0ull : 1ull,
                after.empty() ? 0ull : after.back().key};
  KeyCount prev = c.exscan(mine, [](const KeyCount& a, const KeyCount& b) {
    return KeyCount{a.any | b.any, b.any ? b.max : a.max};
  });
  if (prev.any && !after.empty()) {
    EXPECT_GE(after.front().key, prev.max);
  }

  // Multiset preservation via order-independent checksums.
  auto checksum = [](const std::vector<Rec>& v) {
    std::uint64_t x = 0, s = 0;
    for (const Rec& r : v) {
      std::uint64_t h = r.key * 0x9e3779b97f4a7c15ULL ^ r.payload;
      h ^= h >> 29;
      x ^= h;
      s += h;
    }
    return std::pair<std::uint64_t, std::uint64_t>{x, s};
  };
  auto [bx, bs] = checksum(before);
  auto [ax, as] = checksum(after);
  EXPECT_EQ(c.allreduce(bx, [](auto a, auto b) { return a ^ b; }),
            c.allreduce(ax, [](auto a, auto b) { return a ^ b; }));
  EXPECT_EQ(c.allreduce(bs, mpi::OpSum{}), c.allreduce(as, mpi::OpSum{}));

  const auto n_before =
      c.allreduce(static_cast<std::uint64_t>(before.size()), mpi::OpSum{});
  const auto n_after =
      c.allreduce(static_cast<std::uint64_t>(after.size()), mpi::OpSum{});
  EXPECT_EQ(n_before, n_after);
  if (check_balanced) {
    const std::uint64_t lo = n_before / c.size();
    EXPECT_GE(after.size(), lo);
    EXPECT_LE(after.size(), lo + 1);
  }
}

TEST_P(ParallelSort, PartitionSortRandomInput) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    auto items = random_records(c.rank(), 200 + 17 * c.rank(), 1000, 11);
    const auto before = items;
    sortlib::parallel_sort_partition(c, items, rec_key);
    expect_globally_sorted(c, before, items, /*check_balanced=*/true);
  });
}

TEST_P(ParallelSort, PartitionSortManyDuplicates) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // Only 3 distinct keys: exact splitting must still balance perfectly.
    auto items = random_records(c.rank(), 150, 3, 12);
    const auto before = items;
    sortlib::parallel_sort_partition(c, items, rec_key);
    expect_globally_sorted(c, before, items, /*check_balanced=*/true);
  });
}

TEST_P(ParallelSort, PartitionSortAllOnOneRank) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    std::vector<Rec> items;
    if (c.rank() == 0) items = random_records(0, 512, 1u << 20, 13);
    const auto before = items;
    sortlib::parallel_sort_partition(c, items, rec_key);
    expect_globally_sorted(c, before, items, /*check_balanced=*/true);
  });
}

TEST_P(ParallelSort, PartitionSortEmptyGlobal) {
  const int p = GetParam();
  run_ranks(p, [](mpi::Comm& c) {
    std::vector<Rec> items;
    sortlib::parallel_sort_partition(c, items, rec_key);
    EXPECT_TRUE(items.empty());
  });
}

TEST_P(ParallelSort, PartitionSortCustomTargets) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    auto items = random_records(c.rank(), 100, 1u << 30, 14);
    const auto before = items;
    // All elements to the last rank.
    std::vector<std::uint64_t> targets(p, 0);
    targets[p - 1] = c.allreduce(static_cast<std::uint64_t>(items.size()),
                                 mpi::OpSum{});
    sortlib::parallel_sort_partition(c, items, rec_key, &targets);
    if (c.rank() == p - 1)
      EXPECT_EQ(items.size(), static_cast<std::size_t>(targets[p - 1]));
    else
      EXPECT_TRUE(items.empty());
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
  });
}

TEST_P(ParallelSort, MergeSortRandomInputKeepsCounts) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    auto items = random_records(c.rank(), 120 + 31 * (c.rank() % 3), 5000, 15);
    const auto before = items;
    sortlib::parallel_sort_merge(c, items, rec_key);
    EXPECT_EQ(items.size(), before.size());  // counts preserved
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
  });
}

TEST_P(ParallelSort, MergeSortAlmostSortedDoesFewExchanges) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // Globally sorted input with a small local perturbation: key block per
    // rank, shuffled within the rank only.
    fcs::Rng rng = fcs::Rng(16).stream(c.rank());
    std::vector<Rec> items(300);
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i].key = static_cast<std::uint64_t>(c.rank()) * 1000 +
                     rng.uniform_index(1000);
      items[i].payload = i;
    }
    const auto before = items;
    auto stats = sortlib::parallel_sort_merge(c, items, rec_key);
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
    // Already-partitioned data: the probe must avoid every bulk exchange.
    EXPECT_EQ(stats.exchanges, 0u);
    EXPECT_EQ(stats.fallback_rounds, 0u);
  });
}

TEST_P(ParallelSort, MergeSortUnequalCounts) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // Strongly unequal counts, including empty ranks.
    const std::size_t n = (c.rank() % 3 == 0) ? 0 : 100 * (c.rank() % 4);
    auto items = random_records(c.rank(), n, 1u << 16, 17);
    const auto before = items;
    sortlib::parallel_sort_merge(c, items, rec_key);
    EXPECT_EQ(items.size(), before.size());
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
  });
}

TEST_P(ParallelSort, MergeSortReverseSortedWorstCase) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // Rank r holds key block (p-1-r): maximal disorder across ranks.
    std::vector<Rec> items(64);
    fcs::Rng rng = fcs::Rng(18).stream(c.rank());
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i].key =
          static_cast<std::uint64_t>(p - 1 - c.rank()) * 1000 + rng.uniform_index(1000);
      items[i].payload = i;
    }
    const auto before = items;
    sortlib::parallel_sort_merge(c, items, rec_key);
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
  });
}

// ---------------------------------------------------------------------------
// Adversarial almost-sorted inputs. The adaptive planner (src/plan) now
// routes movement-bounded production steps to the merge sort, so its edge
// cases - duplicate keys straddling rank boundaries, empty ranks, a single
// particle that must cross the whole machine - are no longer benchmark-only
// territory.

/// After a sort whose payloads carry redist::make_index(origin rank, origin
/// position) labels, verify the method-B resort machinery still works on the
/// outcome: invert_origin_indices accepts the labels (it throws on
/// duplicates, gaps, and count mismatches, so acceptance proves the sort
/// kept them a permutation) and routing a per-origin payload through
/// resort_values lands every value on its particle - the inverse side of
/// the permutation.
void expect_resort_roundtrip(mpi::Comm& c, const std::vector<Rec>& after,
                             std::size_t n_original) {
  std::vector<std::uint64_t> origin_of_current(after.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    origin_of_current[i] = after[i].payload;
  const auto resort = redist::invert_origin_indices(
      c, origin_of_current, n_original, redist::ExchangeKind::kSparse);
  ASSERT_EQ(resort.size(), n_original);
  std::vector<std::int64_t> tags(n_original);
  for (std::size_t i = 0; i < n_original; ++i)
    tags[i] = static_cast<std::int64_t>(redist::make_index(c.rank(), i));
  const auto moved = redist::resort_values(c, resort, tags, 1, after.size(),
                                           redist::ExchangeKind::kSparse);
  ASSERT_EQ(moved.size(), after.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(static_cast<std::uint64_t>(moved[i]), after[i].payload);
}

TEST_P(ParallelSort, MergeSortDuplicateKeysAcrossRankBoundaries) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // Rank r holds keys r*100 .. (r+1)*100 INCLUSIVE, interleaved locally,
    // so both edge keys are duplicated on the two adjacent ranks. Equal
    // boundary keys must read as already-ordered: no bulk exchange, and the
    // stable local sort's payload order survives.
    std::vector<Rec> items(202);
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i].key = 100ull * static_cast<std::uint64_t>(c.rank()) + i % 101;
      items[i].payload = redist::make_index(c.rank(), i);
    }
    const auto before = items;
    const auto stats = sortlib::parallel_sort_merge(c, items, rec_key);
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
    // The boundary probe compares the low rank's max key against the high
    // rank's min; equal keys must not trigger a pointless data exchange.
    EXPECT_EQ(stats.exchanges, 0u);
    EXPECT_EQ(stats.fallback_rounds, 0u);
    // Stability: nothing left the rank, so equal keys must keep their
    // original relative order (ascending payload).
    for (std::size_t i = 1; i < items.size(); ++i) {
      if (items[i - 1].key == items[i].key) {
        EXPECT_LT(items[i - 1].payload, items[i].payload);
      }
    }
    expect_resort_roundtrip(c, items, before.size());
  });
}

TEST_P(ParallelSort, MergeSortEmptyRanksKeepResortIndicesInvertible) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // Empty ranks interleaved with loaded ones, few distinct keys so
    // duplicates straddle every boundary the data does cross.
    const std::size_t n = (c.rank() % 3 == 1) ? 0 : 60 + 7 * (c.rank() % 5);
    std::vector<Rec> items(n);
    fcs::Rng rng = fcs::Rng(41).stream(c.rank());
    for (std::size_t i = 0; i < n; ++i)
      items[i] = {rng() % 16, redist::make_index(c.rank(), i)};
    const auto before = items;
    sortlib::parallel_sort_merge(c, items, rec_key);
    EXPECT_EQ(items.size(), n);  // counts fixed: empty ranks stay empty
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
    expect_resort_roundtrip(c, items, n);
  });
}

TEST_P(ParallelSort, MergeSortSingleParticleMigratesTheFullRing) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    // One record per rank; rank 0 holds the globally largest key while all
    // others are already in order. Sorting must walk that one record across
    // every rank boundary and shift everyone else down by one.
    std::vector<Rec> items = {
        {c.rank() == 0 ? 1000ull * static_cast<std::uint64_t>(p)
                       : static_cast<std::uint64_t>(c.rank()),
         redist::make_index(c.rank(), 0)}};
    const auto before = items;
    sortlib::parallel_sort_merge(c, items, rec_key);
    ASSERT_EQ(items.size(), 1u);
    expect_globally_sorted(c, before, items, /*check_balanced=*/false);
    if (c.rank() == p - 1) {
      EXPECT_EQ(items[0].key, 1000ull * static_cast<std::uint64_t>(p));
      EXPECT_EQ(items[0].payload, redist::make_index(0, 0));
    } else {
      EXPECT_EQ(items[0].key, static_cast<std::uint64_t>(c.rank() + 1));
      EXPECT_EQ(items[0].payload, redist::make_index(c.rank() + 1, 0));
    }
    expect_resort_roundtrip(c, items, 1);
  });
}

TEST(ParallelSortTiming, MergeBeatsPartitionOnAlmostSorted) {
  // The paper's motivation for switching sort methods: on almost-sorted
  // data, merge-exchange (point-to-point + early exit) must be cheaper in
  // virtual time than a full partition sort.
  auto net = std::make_shared<sim::SwitchedNetwork>();
  const int p = 16;
  auto make_sorted_items = [](int rank) {
    fcs::Rng rng = fcs::Rng(19).stream(rank);
    std::vector<Rec> items(500);
    for (std::size_t i = 0; i < items.size(); ++i)
      items[i] = {static_cast<std::uint64_t>(rank) * 100000 + rng.uniform_index(100000),
                  i};
    return items;
  };
  const double t_merge = run_ranks(p, [&](mpi::Comm& c) {
    auto items = make_sorted_items(c.rank());
    sortlib::parallel_sort_merge(c, items, rec_key);
  }, net);
  const double t_partition = run_ranks(p, [&](mpi::Comm& c) {
    auto items = make_sorted_items(c.rank());
    sortlib::parallel_sort_partition(c, items, rec_key);
  }, net);
  EXPECT_LT(t_merge, t_partition);
}

}  // namespace
