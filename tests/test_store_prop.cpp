// Property and fuzz tests for the columnar particle store (src/store):
// randomized field sets (0-6 extra fields of mixed widths) ride the carried
// solver exchange across rank counts and dense/sparse negotiation, asserting
// the store-backed redistribution is bit-identical to the legacy
// one-exchange-per-field plan path, that resort indices derived from the
// carried exchange stay a valid inverse permutation, that restoring the
// payload round-trips every column bitwise, and that store-backed fcs_run
// steps stay zero-alloc in the steady state. A deterministic fuzz driver
// exercises the FieldRegistry / column-view error paths (duplicate or empty
// registration, zero-width fields, unregistered lookups, view width
// mismatches, late registration) and grow/shrink cycles (prefix survives,
// new rows zero, capacity monotone). A double-walk audit proves the
// distribution callback runs exactly once per particle in the store path and
// every column row is delivered exactly once.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "fcs/fcs.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"
#include "obs/obs.hpp"
#include "pm/pm_solver.hpp"
#include "redist/exchange_plan.hpp"
#include "redist/resort.hpp"
#include "sortlib/carry.hpp"
#include "spmd_test_util.hpp"
#include "store/particle_store.hpp"
#include "support/error.hpp"

using fcs_test::run_ranks;
using redist::ExchangeKind;
using store::FieldType;
using store::ParticleStore;

namespace {

// Deterministic per-item hash (splitmix64), same scheme as the exchange
// property harness: values depend only on (seed, rank, item).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
std::uint64_t item_hash(std::uint64_t seed, int rank, std::size_t i) {
  return mix(seed ^ mix(static_cast<std::uint64_t>(rank) << 32 | i));
}

// Randomized-but-deterministic field sets: the seed decides how many extra
// fields exist (0..6) and each field's type and component count, covering
// every FieldType and row widths from 8 to 48 bytes (the 48-byte rows
// exercise the generic gather fallback next to the 8/16/24/32 fast paths).
struct FieldDef {
  FieldType type;
  std::size_t components;
};

std::vector<FieldDef> field_defs(std::uint64_t seed) {
  const std::size_t count = (seed * 5 + 3) % 7;
  std::vector<FieldDef> defs;
  for (std::size_t f = 0; f < count; ++f) {
    const std::uint64_t h = item_hash(seed ^ 0xF00D, 0, f);
    FieldDef d;
    switch (h % 4) {
      case 0: d.type = FieldType::kF64; break;
      case 1: d.type = FieldType::kI64; break;
      case 2: d.type = FieldType::kU64; break;
      default: d.type = FieldType::kVec3; break;
    }
    d.components = d.type == FieldType::kVec3 ? 1 + (h >> 8) % 2
                                              : 1 + (h >> 8) % 3;
    defs.push_back(d);
  }
  return defs;
}

class StoreProp
    : public ::testing::TestWithParam<std::tuple<int, ExchangeKind, int>> {};

std::string param_name(
    const ::testing::TestParamInfo<StoreProp::ParamType>& info) {
  const auto [p, kind, seed] = info.param;
  return std::string("Fields") + std::to_string((seed * 5 + 3) % 7) +
         (kind == ExchangeKind::kDense ? "Dense" : "Sparse") + "P" +
         std::to_string(p);
}

// Seeds chosen so the extra-field counts cover 0 (builtin-only), 1, the
// maximum 6, and a mixed middle value.
INSTANTIATE_TEST_SUITE_P(
    Shapes, StoreProp,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 12),
                       ::testing::Values(ExchangeKind::kDense,
                                         ExchangeKind::kSparse),
                       ::testing::Values(0, 1, 2, 5)),
    param_name);

// The carried store exchange (one alltoallv shipping every payload column
// next to the items) must be bit-identical to the legacy path (one
// ExchangePlan apply per field), the origin indices it delivers must invert
// into a valid resort permutation, and restore_payload must round-trip every
// column back to the original bytes.
TEST_P(StoreProp, CarriedExchangeMatchesPerFieldPlanBitwise) {
  const auto [p, kind, seed] = GetParam();
  run_ranks(p, [p = p, kind = kind, seed = seed](mpi::Comm& c) {
    const int r = c.rank();
    // Some ranks hold nothing so empty send/recv sides are exercised too.
    const std::size_t n = (p > 2 && r % 3 == 2)
                              ? 0
                              : 40 + 13 * static_cast<std::size_t>(r % 5) +
                                    static_cast<std::size_t>(seed);

    ParticleStore st;
    const std::vector<FieldDef> defs =
        field_defs(static_cast<std::uint64_t>(seed));
    for (std::size_t f = 0; f < defs.size(); ++f)
      st.register_field("x" + std::to_string(f), defs[f].type,
                        defs[f].components);
    st.resize(n);

    // Payload columns = everything except positions and Morton keys.
    std::vector<std::size_t> payload_ids;
    for (std::size_t id = 0; id < st.field_count(); ++id)
      if (id != ParticleStore::kPos && id != ParticleStore::kKey)
        payload_ids.push_back(id);
    ASSERT_EQ(payload_ids.size(), st.payload_fields());

    // Fill every payload column with deterministic 8-byte lanes (all field
    // widths are multiples of 8) and snapshot the originals.
    std::vector<std::vector<std::byte>> snap(st.field_count());
    for (const std::size_t id : payload_ids) {
      const std::size_t lanes = st.item_bytes(id) / 8;
      std::uint64_t* q = reinterpret_cast<std::uint64_t*>(st.raw(id));
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t w = 0; w < lanes; ++w)
          q[i * lanes + w] =
              item_hash(static_cast<std::uint64_t>(seed) * 131 + id, r,
                        i * 64 + w);
      snap[id].assign(st.raw(id), st.raw(id) + n * st.item_bytes(id));
    }

    std::vector<std::uint64_t> origins(n);
    for (std::size_t i = 0; i < n; ++i) origins[i] = redist::make_index(r, i);
    auto target_of = [p = p, r, seed = seed](std::size_t i) {
      return static_cast<int>(item_hash(777 + static_cast<std::uint64_t>(seed),
                                        r, i) %
                              static_cast<std::uint64_t>(p));
    };
    auto dist = [&](std::size_t i, std::vector<int>& t) {
      t.push_back(target_of(i));
    };

    // Legacy reference: one plan apply per field (from the snapshots - the
    // store columns are overwritten by the carried exchange below).
    redist::ExchangePlan plan = redist::ExchangePlan::build(c, n, dist, kind);
    plan.negotiate(c);
    const std::vector<std::uint64_t> ref_origin =
        plan.apply<std::uint64_t>(c, origins.data(), 1);
    std::vector<std::vector<std::uint64_t>> ref(st.field_count());
    for (const std::size_t id : payload_ids)
      ref[id] = plan.apply<std::uint64_t>(
          c, reinterpret_cast<const std::uint64_t*>(snap[id].data()),
          st.item_bytes(id) / 8);

    // Store path: ONE carried exchange ships the origin items plus every
    // payload column. Slots are packed destination-major in stable item
    // order, exactly like the plan's pack.
    std::vector<std::size_t> dest_counts(static_cast<std::size_t>(p), 0);
    for (std::size_t i = 0; i < n; ++i)
      ++dest_counts[static_cast<std::size_t>(target_of(i))];
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    for (int d = 1; d < p; ++d)
      cursor[static_cast<std::size_t>(d)] =
          cursor[static_cast<std::size_t>(d) - 1] +
          dest_counts[static_cast<std::size_t>(d) - 1];
    std::vector<std::uint32_t> slot_src(n);
    for (std::size_t i = 0; i < n; ++i)
      slot_src[cursor[static_cast<std::size_t>(target_of(i))]++] =
          static_cast<std::uint32_t>(i);

    std::vector<std::byte> out_items;
    sortlib::carry_exchange(
        c, kind == ExchangeKind::kSparse,
        reinterpret_cast<const std::byte*>(origins.data()),
        sizeof(std::uint64_t), n, dest_counts, slot_src.data(),
        /*col_src=*/nullptr, st.exchange_columns(), out_items);

    const std::size_t nr = out_items.size() / sizeof(std::uint64_t);
    ASSERT_EQ(nr, ref_origin.size());
    if (nr > 0) {
      EXPECT_EQ(std::memcmp(out_items.data(), ref_origin.data(),
                            nr * sizeof(std::uint64_t)),
                0)
          << "carried origin items";
    }
    for (const std::size_t id : payload_ids) {
      ASSERT_EQ(ref[id].size() * 8, nr * st.item_bytes(id)) << "field " << id;
      if (nr > 0) {
        EXPECT_EQ(std::memcmp(st.raw(id), ref[id].data(),
                              nr * st.item_bytes(id)),
                  0)
            << "carried column " << id;
      }
    }

    // The delivered origins invert into a valid resort permutation: the
    // zero-communication ResortPlan accepts them and its placement claims
    // every current element exactly once.
    std::vector<std::uint64_t> recv_origin(nr);
    if (nr > 0)
      std::memcpy(recv_origin.data(), out_items.data(),
                  nr * sizeof(std::uint64_t));
    const std::vector<std::uint64_t> resort_indices =
        redist::invert_origin_indices(c, recv_origin, n, kind);
    ASSERT_EQ(resort_indices.size(), n);
    const redist::ResortPlan rp =
        redist::ResortPlan::build(c, resort_indices, recv_origin, kind);
    ASSERT_TRUE(rp.valid());
    ASSERT_EQ(rp.n_changed(), nr);
    std::vector<char> hit(nr, 0);
    for (std::size_t k = 0; k < nr; ++k) {
      ASSERT_LT(rp.placement()[k], nr);
      ASSERT_FALSE(hit[rp.placement()[k]]);
      hit[rp.placement()[k]] = 1;
    }

    // Round trip: sending every carried row back to its origin restores the
    // exact original bytes of every payload column.
    st.restore_payload(c, recv_origin, n, kind);
    for (const std::size_t id : payload_ids) {
      if (n > 0) {
        EXPECT_EQ(std::memcmp(st.raw(id), snap[id].data(),
                              n * st.item_bytes(id)),
                  0)
            << "restored column " << id;
      }
    }

    // Conservation across the communicator.
    const auto sent = c.allreduce(static_cast<std::uint64_t>(n), mpi::OpSum{});
    const auto recvd =
        c.allreduce(static_cast<std::uint64_t>(nr), mpi::OpSum{});
    EXPECT_EQ(sent, recvd);
  });
}

// Double-walk audit for the store path: staging the store's columns into a
// FusedBatch evaluates the distribution callback exactly once per particle
// (the plan caches targets for the count/pack passes), and every column row
// is delivered exactly once - tags stay unique and their totals conserved.
TEST(StoreProp, DistributionRunsOnceAndEachRowShipsExactlyOnce) {
  for (const ExchangeKind kind :
       {ExchangeKind::kDense, ExchangeKind::kSparse}) {
    run_ranks(3, [kind](mpi::Comm& c) {
      const int r = c.rank();
      const std::size_t n = 41 + 7 * static_cast<std::size_t>(r);
      ParticleStore st;
      const std::size_t qid = st.register_field("q", FieldType::kF64);
      st.resize(n);
      // Globally unique, exactly-representable tags per (row, field).
      auto tag = [r](std::size_t i) {
        return static_cast<double>(r) * 1.0e6 + static_cast<double>(i);
      };
      domain::Vec3* const v = st.vel();
      domain::Vec3* const a = st.acc();
      double* const q = st.view<double>(qid);
      double local_pre = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = {tag(i), 1.0, 2.0};
        a[i] = {tag(i) + 0.5, 3.0, 4.0};
        q[i] = tag(i) + 0.25;
        local_pre += v[i].x + a[i].x + q[i];
      }

      std::vector<int> calls(n, 0);
      auto dist = [&](std::size_t i, std::vector<int>& t) {
        ++calls[i];
        t.push_back(static_cast<int>(item_hash(5, r, i) % 3));
      };
      redist::ExchangePlan plan = redist::ExchangePlan::build(c, n, dist, kind);
      plan.negotiate(c);
      redist::FusedBatch batch(c, plan);
      st.stage_into(batch);
      batch.execute();

      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(calls[i], 1) << "item " << i;

      const std::size_t nr = plan.n_recv_total();
      const domain::Vec3* const v2 = st.vel();
      const domain::Vec3* const a2 = st.acc();
      const double* const q2 = st.view<const double>(qid);
      std::set<double> seen;
      double local_post = 0.0;
      for (std::size_t k = 0; k < nr; ++k) {
        EXPECT_TRUE(seen.insert(v2[k].x).second) << "duplicate row " << k;
        local_post += v2[k].x + a2[k].x + q2[k];
      }
      // Tag sums are integers scaled by dyadic fractions, so the double
      // reductions are exact: equality means every row arrived exactly once.
      const double pre = c.allreduce(local_pre, mpi::OpSum{});
      const double post = c.allreduce(local_post, mpi::OpSum{});
      EXPECT_EQ(pre, post);
      const auto sent =
          c.allreduce(static_cast<std::uint64_t>(n), mpi::OpSum{});
      const auto recvd =
          c.allreduce(static_cast<std::uint64_t>(nr), mpi::OpSum{});
      EXPECT_EQ(sent, recvd);
    });
  }
}

// Full-simulation bit-identity: the same run with and without the store
// produces the identical rank-local state checksum for both solvers (the
// store is a pure transport change).
TEST(StoreProp, StoreBackedSimulationMatchesLegacyChecksum) {
  for (const char* solver : {"fmm", "pm"}) {
    run_ranks(6, [solver](mpi::Comm& c) {
      auto run_once = [&](bool use_store) {
        md::SystemConfig sys;
        sys.box = domain::Box({0, 0, 0}, {16, 16, 16}, {true, true, true});
        sys.n_global = 1024;
        sys.distribution = md::InitialDistribution::kRandom;
        md::LocalParticles particles = md::generate_system(c, sys);
        fcs::Fcs handle(c, solver);
        handle.set_common(sys.box);
        handle.set_accuracy(1e-3);
        if (std::string(solver) == "pm") {
          auto& pm_solver = dynamic_cast<pm::PmSolver&>(handle.solver());
          pm_solver.set_cutoff(1.5);
          pm_solver.set_mesh(16);
        }
        md::SimulationConfig cfg;
        cfg.box = sys.box;
        cfg.steps = 4;
        cfg.resort = true;
        cfg.modeled_compute = true;
        cfg.surrogate_motion = true;
        cfg.surrogate_step = 0.1;
        cfg.extra_vec3_fields = 2;
        cfg.use_store = use_store;
        const md::SimulationResult res =
            md::run_simulation(c, handle, particles, cfg);
        return res.state_checksum;
      };
      const std::uint64_t legacy = run_once(false);
      const std::uint64_t stored = run_once(true);
      EXPECT_EQ(legacy, stored) << solver;
    });
  }
}

// ---------------------------------------------------------------------------
// Steady-state allocation regression: store-backed fcs_run steps allocate
// nothing once warmed up, and the carried exchange actually runs.

double store_pool_alloc_after_warmup(const std::string& plan_spec, int steps,
                                     int warmup, const char* carry_counter) {
  auto rec = std::make_shared<obs::Recorder>();
  sim::EngineConfig ecfg;
  ecfg.nranks = 8;
  ecfg.stack_bytes = 512 * 1024;
  ecfg.recorder = rec;
  sim::Engine engine(ecfg);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm = mpi::Comm::world(ctx);
    md::SystemConfig sys;
    sys.box = domain::Box({0, 0, 0}, {16, 16, 16}, {true, true, true});
    sys.n_global = 512;
    sys.distribution = md::InitialDistribution::kRandom;
    md::LocalParticles particles = md::generate_system(comm, sys);
    fcs::Fcs handle(comm, "pm");
    handle.set_common(sys.box);
    handle.set_accuracy(1e-3);
    auto& pm_solver = dynamic_cast<pm::PmSolver&>(handle.solver());
    pm_solver.set_cutoff(1.5);
    pm_solver.set_mesh(16);
    md::SimulationConfig cfg;
    cfg.steps = steps;
    cfg.modeled_compute = true;
    cfg.surrogate_motion = true;
    cfg.surrogate_step = 0.1;
    cfg.box = sys.box;
    cfg.use_store = true;
    cfg.extra_vec3_fields = 2;
    cfg.plan = plan::parse_plan_spec(plan_spec);
    (void)md::run_simulation(comm, handle, particles, cfg);
  });
  const auto reduced = rec->reduce_counters();
  // Sanity: the store transport actually ran.
  const auto it_sanity = reduced.find(carry_counter);
  EXPECT_TRUE(it_sanity != reduced.end() && it_sanity->second.totals.sum > 0.0)
      << plan_spec << " never hit " << carry_counter;
  double late = 0.0;
  if (const auto it = reduced.find("pool.alloc"); it != reduced.end())
    for (const auto& [epoch, summary] : it->second.by_epoch)
      if (epoch > warmup) late += summary.sum;
  return late;
}

TEST(StoreProp, StoreSteadyStateRunsDoNotAllocateDense) {
  EXPECT_EQ(store_pool_alloc_after_warmup("fixed:B", 14, 7,
                                          "redist.carry.exchanges"),
            0.0);
}

TEST(StoreProp, StoreSteadyStateRunsDoNotAllocateSparse) {
  EXPECT_EQ(store_pool_alloc_after_warmup("fixed:B+mm,merge,neighborhood", 14,
                                          7, "redist.fused.batches"),
            0.0);
}

// ---------------------------------------------------------------------------
// Deterministic fuzz driver for the registry / column-view error paths:
// every misuse throws fcs::Error instead of corrupting memory.

TEST(StoreFuzz, RegistryAndViewErrorPathsThrow) {
  ParticleStore st;
  // Duplicate registrations: builtin and extra names alike.
  EXPECT_THROW(st.register_field("vel", FieldType::kVec3), fcs::Error);
  const std::size_t qid = st.register_field("q", FieldType::kF64);
  EXPECT_THROW(st.register_field("q", FieldType::kF64), fcs::Error);
  // Degenerate specs: empty name, zero-width field.
  EXPECT_THROW(st.register_field("", FieldType::kF64), fcs::Error);
  EXPECT_THROW(st.register_field("z", FieldType::kF64, 0), fcs::Error);
  // Unregistered lookups by name and by id.
  EXPECT_THROW(st.registry().id_of("nope"), fcs::Error);
  EXPECT_THROW(st.registry().spec(99), fcs::Error);
  EXPECT_THROW(st.raw(99), fcs::Error);
  EXPECT_THROW(st.item_bytes(99), fcs::Error);
  EXPECT_THROW(st.capacity_bytes(99), fcs::Error);
  // Typed views must match the component width.
  EXPECT_THROW(st.view<double>(ParticleStore::kVel), fcs::Error);
  EXPECT_THROW(st.view<float>(qid), fcs::Error);
  EXPECT_NO_THROW(st.view<double>(qid));
  // Fields register once per run: loading particles seals the registry.
  st.resize(4);
  EXPECT_THROW(st.register_field("late", FieldType::kF64), fcs::Error);
  // Permutations must cover the exact row count.
  const std::uint32_t order[4] = {1, 0, 3, 2};
  EXPECT_THROW(st.permute(order, 3), fcs::Error);
  EXPECT_NO_THROW(st.permute(order, 4));
}

// Grow/shrink cycles: the surviving prefix is preserved bit for bit, regrown
// rows come back zeroed, and column capacity never shrinks (the grow-only
// pool contract behind the zero-alloc steady state).
TEST(StoreFuzz, GrowShrinkCyclesPreserveDataAndCapacity) {
  ParticleStore st;
  const std::size_t qid = st.register_field("charge", FieldType::kF64);
  const std::size_t tid = st.register_field("tag", FieldType::kU64, 2);
  std::vector<std::uint64_t> model;  // expected contents of the tag column
  std::size_t cap_q = 0, cap_t = 0;
  std::uint64_t h = 0xfeedULL;
  for (int iter = 0; iter < 120; ++iter) {
    h = mix(h);
    const std::size_t n_old = st.size();
    const std::size_t n_new = h % 1500;
    st.resize(n_new);
    ASSERT_EQ(st.size(), n_new);

    // Capacity is monotone non-decreasing across arbitrary resize cycles.
    EXPECT_GE(st.capacity_bytes(qid), cap_q) << "iter " << iter;
    EXPECT_GE(st.capacity_bytes(tid), cap_t) << "iter " << iter;
    EXPECT_GE(st.capacity_bytes(tid), n_new * st.item_bytes(tid));
    cap_q = std::max(cap_q, st.capacity_bytes(qid));
    cap_t = std::max(cap_t, st.capacity_bytes(tid));

    const std::uint64_t* t = st.view<std::uint64_t>(tid);
    // Surviving prefix preserved...
    const std::size_t keep = std::min(n_old, n_new);
    if (keep > 0) {
      ASSERT_EQ(std::memcmp(t, model.data(), keep * 2 * sizeof(std::uint64_t)),
                0)
          << "iter " << iter;
    }
    // ...and freshly (re)grown rows are zero-initialized.
    for (std::size_t i = keep; i < n_new; ++i) {
      ASSERT_EQ(t[2 * i], 0u) << "iter " << iter << " row " << i;
      ASSERT_EQ(t[2 * i + 1], 0u) << "iter " << iter << " row " << i;
    }

    // Restamp every row for the next round.
    std::uint64_t* tw = st.view<std::uint64_t>(tid);
    double* qw = st.view<double>(qid);
    model.assign(2 * n_new, 0);
    for (std::size_t i = 0; i < n_new; ++i) {
      model[2 * i] = tw[2 * i] = mix(h ^ i);
      model[2 * i + 1] = tw[2 * i + 1] = mix(h ^ (i << 1));
      qw[i] = static_cast<double>(i);
    }
  }
}

// Fuzzed permutations move every column's rows coherently (positions and
// Morton keys included).
TEST(StoreFuzz, PermuteMovesEveryColumnRowCoherently) {
  ParticleStore st;
  const std::size_t qid = st.register_field("q", FieldType::kU64);
  const std::size_t n = 257;
  st.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.pos()[i] = {static_cast<double>(i), 0, 0};
    st.vel()[i] = {0, static_cast<double>(i), 0};
    st.keys()[i] = i;
    st.view<std::uint64_t>(qid)[i] = i ^ 0xabcdULL;
  }
  // Deterministic Fisher-Yates shuffle.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::uint64_t h = 42;
  for (std::size_t i = n - 1; i > 0; --i) {
    h = mix(h);
    std::swap(order[i], order[h % (i + 1)]);
  }
  st.permute(order.data(), n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto src = static_cast<std::size_t>(order[k]);
    EXPECT_EQ(st.pos()[k].x, static_cast<double>(src));
    EXPECT_EQ(st.vel()[k].y, static_cast<double>(src));
    EXPECT_EQ(st.keys()[k], src);
    EXPECT_EQ(st.view<std::uint64_t>(qid)[k], src ^ 0xabcdULL);
  }
}

}  // namespace
