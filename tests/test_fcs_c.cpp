// Tests of the C binding: the paper's literal interface contract.
#include <gtest/gtest.h>

#include <vector>

#include "fcs/fcs_c.h"
#include "md/system.hpp"
#include "spmd_test_util.hpp"

using fcs_test::run_ranks;

namespace {

struct CSystem {
  std::vector<double> pos;  // xyzxyz...
  std::vector<double> q;
  fcs_int n = 0;
};

CSystem make_local_system(const mpi::Comm& c, std::size_t n_global) {
  md::SystemConfig sys;
  sys.box = domain::Box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  sys.n_global = n_global;
  sys.distribution = md::InitialDistribution::kRandom;
  md::LocalParticles lp = md::generate_system(c, sys);
  CSystem out;
  out.n = static_cast<fcs_int>(lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    out.pos.push_back(lp.pos[i].x);
    out.pos.push_back(lp.pos[i].y);
    out.pos.push_back(lp.pos[i].z);
    out.q.push_back(lp.q[i]);
  }
  return out;
}

void set_common_cube(FCS handle, double extent, bool periodic) {
  const double off[3] = {0, 0, 0};
  const double a[3] = {extent, 0, 0};
  const double b[3] = {0, extent, 0};
  const double cc[3] = {0, 0, extent};
  const fcs_int per[3] = {periodic, periodic, periodic};
  ASSERT_EQ(fcs_set_common(handle, off, a, b, cc, per), FCS_SUCCESS);
}

TEST(CApi, InitRejectsBadArguments) {
  run_ranks(1, [](mpi::Comm& c) {
    FCS handle = nullptr;
    EXPECT_EQ(fcs_init(&handle, "nosuch", &c), FCS_ERROR_LOGICAL);
    EXPECT_NE(std::string(fcs_last_error()).find("nosuch"), std::string::npos);
    EXPECT_EQ(fcs_init(nullptr, "pm", &c), FCS_ERROR_INVALID_ARGUMENT);
  });
}

TEST(CApi, MethodARoundTrip) {
  run_ranks(4, [](mpi::Comm& c) {
    CSystem s = make_local_system(c, 6 * 6 * 6);
    FCS handle = nullptr;
    ASSERT_EQ(fcs_init(&handle, "pm", &c), FCS_SUCCESS);
    set_common_cube(handle, 10, true);
    ASSERT_EQ(fcs_set_tolerance(handle, 1e-2), FCS_SUCCESS);
    ASSERT_EQ(fcs_tune(handle, s.n, s.pos.data(), s.q.data()), FCS_SUCCESS);

    const fcs_int cap = s.n;
    std::vector<double> phi(static_cast<std::size_t>(cap));
    std::vector<double> field(static_cast<std::size_t>(3 * cap));
    fcs_int n = s.n;
    const auto pos_before = s.pos;
    ASSERT_EQ(fcs_run(handle, &n, cap, s.pos.data(), s.q.data(), phi.data(),
                      field.data()),
              FCS_SUCCESS);
    EXPECT_EQ(n, s.n);
    EXPECT_EQ(s.pos, pos_before);  // method A keeps the order
    fcs_int avail = -1;
    ASSERT_EQ(fcs_get_resort_availability(handle, &avail), FCS_SUCCESS);
    EXPECT_EQ(avail, 0);
    ASSERT_EQ(fcs_destroy(handle), FCS_SUCCESS);
  });
}

TEST(CApi, MethodBWithResort) {
  run_ranks(4, [](mpi::Comm& c) {
    CSystem s = make_local_system(c, 6 * 6 * 6);
    FCS handle = nullptr;
    ASSERT_EQ(fcs_init(&handle, "pm", &c), FCS_SUCCESS);
    set_common_cube(handle, 10, true);
    ASSERT_EQ(fcs_set_tolerance(handle, 1e-2), FCS_SUCCESS);
    ASSERT_EQ(fcs_tune(handle, s.n, s.pos.data(), s.q.data()), FCS_SUCCESS);
    ASSERT_EQ(fcs_set_resort(handle, 1), FCS_SUCCESS);

    const fcs_int cap = 4 * s.n + 64;
    s.pos.resize(static_cast<std::size_t>(3 * cap));
    s.q.resize(static_cast<std::size_t>(cap));
    std::vector<double> phi(static_cast<std::size_t>(cap));
    std::vector<double> field(static_cast<std::size_t>(3 * cap));

    // Per-particle labels to resort afterwards.
    std::vector<fcs_int> labels(static_cast<std::size_t>(cap));
    for (fcs_int i = 0; i < s.n; ++i)
      labels[static_cast<std::size_t>(i)] = 100 * c.rank() + i;

    fcs_int n = s.n;
    ASSERT_EQ(fcs_run(handle, &n, cap, s.pos.data(), s.q.data(), phi.data(),
                      field.data()),
              FCS_SUCCESS);
    fcs_int avail = 0, n_changed = 0;
    ASSERT_EQ(fcs_get_resort_availability(handle, &avail), FCS_SUCCESS);
    EXPECT_EQ(avail, 1);
    ASSERT_EQ(fcs_get_resort_particles(handle, &n_changed), FCS_SUCCESS);
    EXPECT_EQ(n_changed, n);

    const fcs_int n_original =
        static_cast<fcs_int>(make_local_system(c, 6 * 6 * 6).n);
    ASSERT_EQ(fcs_resort_ints(handle, labels.data(), 1, n_original),
              FCS_SUCCESS);
    // All labels still name valid origins.
    for (fcs_int i = 0; i < n_changed; ++i) {
      const fcs_int src = labels[static_cast<std::size_t>(i)] / 100;
      EXPECT_GE(src, 0);
      EXPECT_LT(src, c.size());
    }

    // Global count preserved.
    const auto total =
        c.allreduce(static_cast<std::uint64_t>(n), mpi::OpSum{});
    EXPECT_EQ(total, 216u);
    ASSERT_EQ(fcs_destroy(handle), FCS_SUCCESS);
  });
}

TEST(CApi, ResortWithoutMethodBFails) {
  run_ranks(2, [](mpi::Comm& c) {
    CSystem s = make_local_system(c, 4 * 4 * 4);
    FCS handle = nullptr;
    ASSERT_EQ(fcs_init(&handle, "pm", &c), FCS_SUCCESS);
    set_common_cube(handle, 10, true);
    ASSERT_EQ(fcs_tune(handle, s.n, s.pos.data(), s.q.data()), FCS_SUCCESS);
    std::vector<double> phi(static_cast<std::size_t>(s.n));
    std::vector<double> field(static_cast<std::size_t>(3 * s.n));
    fcs_int n = s.n;
    ASSERT_EQ(fcs_run(handle, &n, s.n, s.pos.data(), s.q.data(), phi.data(),
                      field.data()),
              FCS_SUCCESS);
    std::vector<double> extra(static_cast<std::size_t>(s.n), 1.0);
    EXPECT_EQ(fcs_resort_floats(handle, extra.data(), 1, s.n),
              FCS_ERROR_LOGICAL);
    ASSERT_EQ(fcs_destroy(handle), FCS_SUCCESS);
  });
}

TEST(CApi, ErrorMessagesAreIsolatedPerSession) {
  // Service mode runs many sessions per rank: one session's failure must
  // not clobber another's retrievable message (the ScaFaCoS-style
  // fcs_get_last_error_message contract, as opposed to the thread-local
  // fcs_last_error fallback which always reflects the most recent failure).
  run_ranks(2, [](mpi::Comm& c) {
    FCS h1 = nullptr;
    FCS h2 = nullptr;
    ASSERT_EQ(fcs_init(&h1, "pm", &c), FCS_SUCCESS);
    ASSERT_EQ(fcs_init(&h2, "pm", &c), FCS_SUCCESS);

    // Fail h1 only: resort queries without a method-B run are a logic error.
    double dummy = 0.0;
    ASSERT_EQ(fcs_resort_floats(h1, &dummy, 1, 0), FCS_ERROR_LOGICAL);
    const char* m1 = nullptr;
    ASSERT_EQ(fcs_get_last_error_message(h1, &m1), FCS_SUCCESS);
    EXPECT_NE(std::string(m1), "");
    const char* m2 = nullptr;
    ASSERT_EQ(fcs_get_last_error_message(h2, &m2), FCS_SUCCESS);
    EXPECT_EQ(std::string(m2), "");  // h2 never failed

    // Fail h2 differently: each handle keeps its own text.
    ASSERT_EQ(fcs_resort_ints(h2, nullptr, 1, 0), FCS_ERROR_INVALID_ARGUMENT);
    ASSERT_EQ(fcs_get_last_error_message(h2, &m2), FCS_SUCCESS);
    ASSERT_EQ(fcs_get_last_error_message(h1, &m1), FCS_SUCCESS);
    EXPECT_NE(std::string(m2), "");
    EXPECT_NE(std::string(m1), std::string(m2));

    // The NULL-handle query and the legacy global reflect the most recent
    // failure on this thread, whichever session it belonged to.
    const char* mg = nullptr;
    ASSERT_EQ(fcs_get_last_error_message(nullptr, &mg), FCS_SUCCESS);
    EXPECT_EQ(std::string(mg), std::string(m2));
    EXPECT_EQ(std::string(fcs_last_error()), std::string(m2));

    ASSERT_EQ(fcs_destroy(h1), FCS_SUCCESS);
    ASSERT_EQ(fcs_destroy(h2), FCS_SUCCESS);
  });
}

TEST(CApi, RunReportsRankFailure) {
  // Rank 1 crashes mid-run (sim fault injection); rank 0's next fcs_run
  // must surface ULFM's "process failed" as FCS_ERR_RANK_FAILED with a
  // retrievable message, instead of hanging or aborting.
  //
  // The crashed rank's fiber unwinds without ever reaching its own
  // fcs_destroy call, so the handle must be released by a guard or the
  // (shared-process) simulator leaks it - LeakSanitizer enforces this.
  struct HandleGuard {
    FCS h = nullptr;
    ~HandleGuard() {
      if (h != nullptr) fcs_destroy(h);
    }
  };
  sim::EngineConfig ecfg;
  ecfg.nranks = 2;
  ecfg.fault_plan.crashes.push_back({1, 1.0e-4});
  sim::run_spmd(ecfg, [](sim::RankCtx& ctx) {
    mpi::Comm c = mpi::Comm::world(ctx);
    CSystem s = make_local_system(c, 4 * 4 * 4);
    FCS handle = nullptr;
    ASSERT_EQ(fcs_init(&handle, "pm", &c), FCS_SUCCESS);
    HandleGuard guard{handle};
    set_common_cube(handle, 10, true);
    ASSERT_EQ(fcs_set_tolerance(handle, 1e-2), FCS_SUCCESS);
    std::vector<double> phi(static_cast<std::size_t>(s.n));
    std::vector<double> field(static_cast<std::size_t>(3 * s.n));
    // Keep running until rank 1's crash time passes. Rank 1 dies INSIDE an
    // fcs_run (the engine's kill marker must unwind through the C API's
    // exception barrier); rank 0 then blocks on the dead peer and gets the
    // failure code.
    FCSResult rc = FCS_SUCCESS;
    for (int i = 0; i < 200 && rc == FCS_SUCCESS; ++i) {
      fcs_int n = s.n;
      rc = i == 0 ? fcs_tune(handle, s.n, s.pos.data(), s.q.data())
                  : fcs_run(handle, &n, s.n, s.pos.data(), s.q.data(),
                            phi.data(), field.data());
    }
    // Only rank 0 reaches this point; the crashed rank's fiber is unwound.
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(rc, FCS_ERR_RANK_FAILED);
    const char* message = nullptr;
    ASSERT_EQ(fcs_get_last_error_message(handle, &message), FCS_SUCCESS);
    ASSERT_NE(message, nullptr);
    // The message names the failed peer.
    EXPECT_NE(std::string(message).find("1"), std::string::npos) << message;
    EXPECT_NE(std::string(message).find("fail"), std::string::npos) << message;
    guard.h = nullptr;
    ASSERT_EQ(fcs_destroy(handle), FCS_SUCCESS);
  });
}

}  // namespace
