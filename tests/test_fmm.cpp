#include <gtest/gtest.h>

#include <cmath>

#include "fmm/fmm_solver.hpp"
#include "fmm/harmonics.hpp"
#include "fmm/multipole.hpp"
#include "fmm/octree.hpp"
#include "pm/direct.hpp"
#include "redist/resort.hpp"
#include "spmd_test_util.hpp"
#include "support/rng.hpp"

using domain::Box;
using domain::Vec3;
using fcs_test::run_ranks;

namespace {

Vec3 random_in_ball(fcs::Rng& rng, double radius) {
  for (;;) {
    Vec3 v{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (v.norm2() <= 1.0) return v * radius;
  }
}

// ---------------------------------------------------------------------------
// Solid harmonics

TEST(Harmonics, KernelExpansionIdentity) {
  // 1/|r - r'| = sum_lm R_l^m(r') conj(I_l^m(r)) for |r| > |r'|.
  fcs::Rng rng(41);
  const int p = 16;
  std::vector<fmm::Complex> reg, irr;
  for (int t = 0; t < 20; ++t) {
    const Vec3 rp = random_in_ball(rng, 0.3);
    Vec3 r = random_in_ball(rng, 1.0);
    while (r.norm() < 0.8) r = random_in_ball(rng, 1.0);
    fmm::regular_harmonics(rp, p, reg);
    fmm::irregular_harmonics(r, p, irr);
    fmm::Complex sum{0, 0};
    for (int l = 0; l <= p; ++l)
      for (int m = -l; m <= l; ++m)
        sum += fmm::harmonic_at(reg, p, l, m) *
               std::conj(fmm::harmonic_at(irr, p, l, m));
    const double exact = 1.0 / (r - rp).norm();
    EXPECT_NEAR(sum.real(), exact, 2e-5 * exact);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-9);
  }
}

TEST(Harmonics, RegularAdditionTheorem) {
  // R_l^m(a + b) = sum_{j,k} R_j^k(a) R_{l-j}^{m-k}(b).
  fcs::Rng rng(42);
  const int p = 6;
  std::vector<fmm::Complex> ra, rb, rab;
  const Vec3 a = random_in_ball(rng, 0.7);
  const Vec3 b = random_in_ball(rng, 0.5);
  fmm::regular_harmonics(a, p, ra);
  fmm::regular_harmonics(b, p, rb);
  fmm::regular_harmonics(a + b, p, rab);
  for (int l = 0; l <= p; ++l)
    for (int m = 0; m <= l; ++m) {
      fmm::Complex sum{0, 0};
      for (int j = 0; j <= l; ++j)
        for (int k = -j; k <= j; ++k)
          sum += fmm::harmonic_at(ra, p, j, k) *
                 fmm::harmonic_at(rb, p, l - j, m - k);
      const fmm::Complex exact = rab[fmm::coef_index(l, m)];
      EXPECT_NEAR(sum.real(), exact.real(), 1e-10);
      EXPECT_NEAR(sum.imag(), exact.imag(), 1e-10);
    }
}

TEST(Harmonics, LowOrderClosedForms) {
  std::vector<fmm::Complex> reg, irr;
  const Vec3 r{0.3, -0.4, 0.5};
  fmm::regular_harmonics(r, 2, reg);
  EXPECT_NEAR(reg[fmm::coef_index(0, 0)].real(), 1.0, 1e-14);
  EXPECT_NEAR(reg[fmm::coef_index(1, 0)].real(), r.z, 1e-14);
  EXPECT_NEAR(reg[fmm::coef_index(1, 1)].real(), -r.x / 2, 1e-14);
  EXPECT_NEAR(reg[fmm::coef_index(1, 1)].imag(), -r.y / 2, 1e-14);
  fmm::irregular_harmonics(r, 1, irr);
  const double rn = r.norm();
  EXPECT_NEAR(irr[fmm::coef_index(0, 0)].real(), 1.0 / rn, 1e-14);
  EXPECT_NEAR(irr[fmm::coef_index(1, 0)].real(), r.z / (rn * rn * rn), 1e-12);
}

// ---------------------------------------------------------------------------
// Operators: each against brute force

struct Cloud {
  std::vector<Vec3> pos;
  std::vector<double> q;
};

Cloud make_cloud(fcs::Rng& rng, const Vec3& center, double radius, int n) {
  Cloud c;
  for (int i = 0; i < n; ++i) {
    c.pos.push_back(center + random_in_ball(rng, radius));
    c.q.push_back(rng.uniform(-1, 1));
  }
  return c;
}

double direct_potential(const Cloud& c, const Vec3& x) {
  double phi = 0;
  for (std::size_t i = 0; i < c.pos.size(); ++i)
    phi += c.q[i] / (x - c.pos[i]).norm();
  return phi;
}

TEST(Operators, P2MThenEvaluate) {
  fcs::Rng rng(43);
  const int p = 12;
  const Vec3 center{1, 2, 3};
  Cloud cloud = make_cloud(rng, center, 0.5, 20);
  fmm::Expansion w(p);
  for (std::size_t i = 0; i < cloud.pos.size(); ++i)
    fmm::p2m(cloud.pos[i], cloud.q[i], center, w);
  const Vec3 x = center + Vec3{2.5, 0.3, -0.4};
  double phi = 0;
  Vec3 field{};
  fmm::m2p(w, center, x, phi, field);
  EXPECT_NEAR(phi, direct_potential(cloud, x), 1e-5);
  // Field against numeric differentiation of the direct potential.
  const double h = 1e-6;
  for (int d = 0; d < 3; ++d) {
    Vec3 xp = x, xm = x;
    xp[d] += h;
    xm[d] -= h;
    const double e_fd =
        -(direct_potential(cloud, xp) - direct_potential(cloud, xm)) / (2 * h);
    EXPECT_NEAR(field[d], e_fd, 1e-4 * std::max(1.0, std::abs(e_fd)));
  }
}

TEST(Operators, M2MPreservesFarPotential) {
  fcs::Rng rng(44);
  const int p = 12;
  const Vec3 c1{0, 0, 0}, c2{0.4, -0.2, 0.3};
  Cloud cloud = make_cloud(rng, c1, 0.4, 15);
  fmm::Expansion w1(p), w2(p);
  for (std::size_t i = 0; i < cloud.pos.size(); ++i)
    fmm::p2m(cloud.pos[i], cloud.q[i], c1, w1);
  fmm::m2m(w1, c1, c2, w2);
  const Vec3 x{4, 3, -2};
  double phi1 = 0, phi2 = 0;
  Vec3 f1{}, f2{};
  fmm::m2p(w1, c1, x, phi1, f1);
  fmm::m2p(w2, c2, x, phi2, f2);
  EXPECT_NEAR(phi1, phi2, 1e-7 * std::max(1.0, std::abs(phi1)));
}

TEST(Operators, M2LReproducesPotentialLocally) {
  fcs::Rng rng(45);
  const int p = 14;
  const Vec3 cm{0, 0, 0};
  const Vec3 cl{3.0, 0.5, -0.5};
  Cloud cloud = make_cloud(rng, cm, 0.5, 15);
  fmm::Expansion w(p), u(p);
  for (std::size_t i = 0; i < cloud.pos.size(); ++i)
    fmm::p2m(cloud.pos[i], cloud.q[i], cm, w);
  fmm::m2l(w, cm, cl, u);
  const Vec3 x = cl + Vec3{0.3, -0.2, 0.25};
  double phi = 0;
  Vec3 field{};
  fmm::l2p(u, cl, x, phi, field);
  const double exact = direct_potential(cloud, x);
  EXPECT_NEAR(phi, exact, 2e-4 * std::max(1.0, std::abs(exact)));
  const double h = 1e-6;
  for (int d = 0; d < 3; ++d) {
    Vec3 xp = x, xm = x;
    xp[d] += h;
    xm[d] -= h;
    const double e_fd =
        -(direct_potential(cloud, xp) - direct_potential(cloud, xm)) / (2 * h);
    EXPECT_NEAR(field[d], e_fd, 5e-3 * std::max(1.0, std::abs(e_fd)));
  }
}

TEST(Operators, L2LPreservesLocalPotential) {
  fcs::Rng rng(46);
  const int p = 14;
  const Vec3 cm{0, 0, 0}, cl{3, 0, 0}, cl2{3.3, 0.2, -0.1};
  Cloud cloud = make_cloud(rng, cm, 0.5, 10);
  fmm::Expansion w(p), u(p), u2(p);
  for (std::size_t i = 0; i < cloud.pos.size(); ++i)
    fmm::p2m(cloud.pos[i], cloud.q[i], cm, w);
  fmm::m2l(w, cm, cl, u);
  fmm::l2l(u, cl, cl2, u2);
  const Vec3 x = cl2 + Vec3{0.1, 0.15, -0.05};
  double phi1 = 0, phi2 = 0;
  Vec3 f1{}, f2{};
  fmm::l2p(u, cl, x, phi1, f1);
  fmm::l2p(u2, cl2, x, phi2, f2);
  EXPECT_NEAR(phi1, phi2, 1e-6 * std::max(1.0, std::abs(phi1)));
}

// ---------------------------------------------------------------------------
// Octree helpers

TEST(Octree, NeighborsCountsAndBounds) {
  // Corner box at level 2 has 7 neighbors, center box 26.
  std::vector<std::uint64_t> n;
  fmm::box_neighbors(2, domain::morton_encode(0, 0, 0), n);
  EXPECT_EQ(n.size(), 7u);
  fmm::box_neighbors(2, domain::morton_encode(1, 1, 1), n);
  EXPECT_EQ(n.size(), 26u);
  for (std::uint64_t key : n) EXPECT_LT(key, 64u);
}

TEST(Octree, InteractionListIsWellSeparatedAndComplete) {
  std::vector<std::uint64_t> ilist;
  const std::uint64_t key = domain::morton_encode(2, 1, 3);
  fmm::interaction_list(3, key, ilist);
  EXPECT_LE(ilist.size(), 189u);
  EXPECT_FALSE(ilist.empty());
  for (std::uint64_t src : ilist) {
    EXPECT_GE(fmm::box_distance(src, key), 2);
    // Parent must be adjacent to (or equal to) my parent.
    EXPECT_LE(fmm::box_distance(domain::morton_parent(src),
                                domain::morton_parent(key)),
              1);
  }
  // Completeness: every level-3 box is either adjacent, in the interaction
  // list, or its parent is far from my parent.
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z) {
        const std::uint64_t b = domain::morton_encode(x, y, z);
        const bool adjacent = fmm::box_distance(b, key) <= 1;
        const bool listed =
            std::binary_search(ilist.begin(), ilist.end(), b);
        const bool parent_far = fmm::box_distance(domain::morton_parent(b),
                                                  domain::morton_parent(key)) > 1;
        EXPECT_TRUE(adjacent || listed || parent_far)
            << "box " << x << "," << y << "," << z << " unaccounted";
        EXPECT_LE(adjacent + listed + parent_far, 1 + (parent_far && listed));
      }
}

TEST(Octree, BoxCenters) {
  Box box({0, 0, 0}, {8, 8, 8}, {false, false, false});
  const Vec3 c = fmm::box_center(box, 2, domain::morton_encode(1, 2, 3));
  EXPECT_DOUBLE_EQ(c.x, 3.0);
  EXPECT_DOUBLE_EQ(c.y, 5.0);
  EXPECT_DOUBLE_EQ(c.z, 7.0);
}

// ---------------------------------------------------------------------------
// Full solver against the direct oracle

struct FmmOracle {
  std::vector<Vec3> pos;
  std::vector<double> q;
  std::vector<double> phi;
  std::vector<Vec3> field;
  Box box{{0, 0, 0}, {10, 10, 10}, {false, false, false}};
};

FmmOracle make_fmm_oracle(std::size_t n) {
  FmmOracle o;
  fcs::Rng rng(47);
  for (std::size_t i = 0; i < n; ++i) {
    o.pos.push_back(
        {rng.uniform(0.2, 9.8), rng.uniform(0.2, 9.8), rng.uniform(0.2, 9.8)});
    o.q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  pm::direct_reference(o.pos, o.q, o.phi, o.field);
  return o;
}

class FmmSolverRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, FmmSolverRanks, ::testing::Values(1, 2, 4, 8));

TEST_P(FmmSolverRanks, MatchesDirectSum) {
  const int p = GetParam();
  const FmmOracle oracle = make_fmm_oracle(600);
  run_ranks(p, [&](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    for (std::size_t i = 0; i < oracle.pos.size(); ++i) {
      if (static_cast<int>(i % p) != c.rank()) continue;
      pos.push_back(oracle.pos[i]);
      q.push_back(oracle.q[i]);
    }
    fmm::FmmSolver solver;
    solver.set_box(oracle.box);
    solver.set_accuracy(1e-3);
    solver.tune(c, pos, q);
    fcs::SolveOptions opts;
    auto result = solver.solve(c, pos, q, opts);

    double err2 = 0, ref2 = 0, ferr2 = 0, fref2 = 0;
    for (std::size_t i = 0; i < result.positions.size(); ++i) {
      const std::size_t gi =
          static_cast<std::size_t>(redist::index_pos(result.origin[i])) * p +
          static_cast<std::size_t>(redist::index_rank(result.origin[i]));
      ASSERT_LT(gi, oracle.pos.size());
      err2 += std::pow(result.potentials[i] - oracle.phi[gi], 2);
      ref2 += std::pow(oracle.phi[gi], 2);
      ferr2 += (result.field[i] - oracle.field[gi]).norm2();
      fref2 += oracle.field[gi].norm2();
    }
    err2 = c.allreduce(err2, mpi::OpSum{});
    ref2 = c.allreduce(ref2, mpi::OpSum{});
    ferr2 = c.allreduce(ferr2, mpi::OpSum{});
    fref2 = c.allreduce(fref2, mpi::OpSum{});
    EXPECT_LT(std::sqrt(err2 / ref2), 2e-3);
    EXPECT_LT(std::sqrt(ferr2 / fref2), 5e-3);
  });
}

TEST(FmmSolverModes, MergeSortPathSameResult) {
  const FmmOracle oracle = make_fmm_oracle(400);
  run_ranks(4, [&](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    for (std::size_t i = 0; i < oracle.pos.size(); ++i) {
      if (static_cast<int>(i % 4) != c.rank()) continue;
      pos.push_back(oracle.pos[i]);
      q.push_back(oracle.q[i]);
    }
    fmm::FmmSolver solver;
    solver.set_box(oracle.box);
    solver.set_accuracy(1e-2);
    solver.tune(c, pos, q);
    fcs::SolveOptions first;
    auto r1 = solver.solve(c, pos, q, first);
    EXPECT_FALSE(solver.last_used_merge_sort());

    fcs::SolveOptions second;
    second.input_in_solver_order = true;
    second.max_particle_move = 0.0;
    auto r2 = solver.solve(c, r1.positions, r1.charges, second);
    EXPECT_TRUE(solver.last_used_merge_sort());
    // Same particles, same totals.
    double e1 = 0, e2 = 0;
    for (std::size_t i = 0; i < r1.potentials.size(); ++i)
      e1 += r1.charges[i] * r1.potentials[i];
    for (std::size_t i = 0; i < r2.potentials.size(); ++i)
      e2 += r2.charges[i] * r2.potentials[i];
    e1 = c.allreduce(e1, mpi::OpSum{});
    e2 = c.allreduce(e2, mpi::OpSum{});
    EXPECT_NEAR(e1, e2, 1e-9 * std::abs(e1));
  });
}

TEST(FmmSolverModes, PeriodicBoxOnlyWithModeledCompute) {
  run_ranks(2, [](mpi::Comm& c) {
    Box box({0, 0, 0}, {4, 4, 4}, {true, true, true});
    fmm::FmmSolver solver;
    solver.set_box(box);
    std::vector<Vec3> pos = {{1.0 + c.rank(), 1, 1}};
    std::vector<double> q = {1.0};
    solver.tune(c, pos, q);
    fcs::SolveOptions opts;
    EXPECT_THROW(solver.solve(c, pos, q, opts), fcs::Error);
    opts.modeled_compute = true;
    EXPECT_NO_THROW(solver.solve(c, pos, q, opts));
  });
}

}  // namespace
