#include <gtest/gtest.h>

#include <cmath>

#include "md/simulation.hpp"
#include "minimpi/cart.hpp"
#include "md/system.hpp"
#include "spmd_test_util.hpp"

using domain::Box;
using domain::Vec3;
using fcs_test::run_ranks;

namespace {

md::SystemConfig small_system(md::InitialDistribution dist,
                              std::size_t n = 6 * 6 * 6) {
  md::SystemConfig cfg;
  cfg.box = Box({0, 0, 0}, {12, 12, 12}, {true, true, true});
  cfg.n_global = n;
  cfg.jitter = 0.2;
  cfg.distribution = dist;
  return cfg;
}

class SystemGen : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, SystemGen, ::testing::Values(1, 2, 4, 8, 13));

TEST_P(SystemGen, GridDistributionIsCompleteAndLocal) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const auto cfg = small_system(md::InitialDistribution::kProcessGrid);
    md::LocalParticles lp = md::generate_system(c, cfg);
    EXPECT_EQ(md::global_count(c, lp), 216u);
    // Every local particle is inside my grid subdomain.
    const std::vector<int> dims = mpi::dims_create(p, 3);
    const domain::CartGrid grid(cfg.box, {dims[0], dims[1], dims[2]});
    for (const Vec3& x : lp.pos)
      EXPECT_EQ(grid.rank_of_position(x), c.rank());
    // Neutral system.
    double qsum = 0;
    for (double q : lp.q) qsum += q;
    EXPECT_NEAR(c.allreduce(qsum, mpi::OpSum{}), 0.0, 1e-12);
  });
}

TEST_P(SystemGen, RandomDistributionIsCompleteAndBalanced) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const auto cfg = small_system(md::InitialDistribution::kRandom, 12 * 12 * 12);
    md::LocalParticles lp = md::generate_system(c, cfg);
    EXPECT_EQ(md::global_count(c, lp), 1728u);
    // Roughly balanced (binomial bound, generous).
    const double expected = 1728.0 / p;
    EXPECT_GT(lp.size(), expected * 0.5);
    EXPECT_LT(lp.size(), expected * 1.6);
  });
}

TEST_P(SystemGen, SingleProcessHoldsAll) {
  const int p = GetParam();
  run_ranks(p, [](mpi::Comm& c) {
    const auto cfg = small_system(md::InitialDistribution::kSingleProcess);
    md::LocalParticles lp = md::generate_system(c, cfg);
    if (c.rank() == 0)
      EXPECT_EQ(lp.size(), 216u);
    else
      EXPECT_EQ(lp.size(), 0u);
  });
}

TEST(SystemGen, DeterministicAcrossDistributions) {
  // The same global particle multiset regardless of the distribution.
  auto checksum_with = [](md::InitialDistribution dist) {
    std::uint64_t sum = 0;
    run_ranks(4, [&](mpi::Comm& c) {
      const auto cfg = small_system(dist);
      md::LocalParticles lp = md::generate_system(c, cfg);
      std::uint64_t local = 0;
      for (std::size_t i = 0; i < lp.size(); ++i) {
        const double key =
            lp.pos[i].x * 3.1 + lp.pos[i].y * 7.7 + lp.pos[i].z * 13.3 +
            lp.q[i];
        local += static_cast<std::uint64_t>(std::llround(key * 1e6));
      }
      const auto total = c.allreduce(local, mpi::OpSum{});
      if (c.rank() == 0) sum = total;
    });
    return sum;
  };
  const auto a = checksum_with(md::InitialDistribution::kSingleProcess);
  const auto b = checksum_with(md::InitialDistribution::kRandom);
  const auto g = checksum_with(md::InitialDistribution::kProcessGrid);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, g);
}

TEST(Integrator, ConstantVelocityMotion) {
  md::LocalParticles p;
  p.pos = {{1, 1, 1}};
  p.vel = {{0.5, -0.25, 0}};
  p.acc = {{0, 0, 0}};
  p.q = {1.0};
  Box box({0, 0, 0}, {4, 4, 4}, {true, true, true});
  const double moved = md::advance_positions(p, box, 2.0);
  EXPECT_NEAR(moved, std::sqrt(1.0 + 0.25), 1e-12);
  EXPECT_NEAR(p.pos[0].x, 2.0, 1e-12);
  EXPECT_NEAR(p.pos[0].y, 0.5, 1e-12);
}

TEST(Integrator, WrapsAroundPeriodicBox) {
  md::LocalParticles p;
  p.pos = {{3.9, 0.1, 2.0}};
  p.vel = {{0.2, -0.2, 0}};
  p.acc = {{0, 0, 0}};
  p.q = {1.0};
  Box box({0, 0, 0}, {4, 4, 4}, {true, true, true});
  md::advance_positions(p, box, 1.0);
  EXPECT_NEAR(p.pos[0].x, 0.1, 1e-12);
  EXPECT_NEAR(p.pos[0].y, 3.9, 1e-12);
}

TEST(Integrator, HarmonicLikeTwoBodyConservesEnergy) {
  // Two opposite charges orbiting: integrate with the direct solver and
  // check that total energy drifts only mildly over many steps.
  run_ranks(2, [](mpi::Comm& c) {
    Box box({0, 0, 0}, {20, 20, 20}, {false, false, false});
    md::LocalParticles p;
    if (c.rank() == 0) {
      p.pos = {{9.0, 10.0, 10.0}};
      p.vel = {{0, 0.5, 0}};
      p.q = {1.0};
    } else {
      p.pos = {{11.0, 10.0, 10.0}};
      p.vel = {{0, -0.5, 0}};
      p.q = {-1.0};
    }
    p.acc.assign(p.size(), Vec3{});

    fcs::Fcs handle(c, "direct");
    handle.set_common(box);
    md::SimulationConfig cfg;
    cfg.box = box;
    cfg.dt = 0.02;
    cfg.steps = 100;
    md::SimulationResult res = md::run_simulation(c, handle, p, cfg);

    // E_total = E_pot + E_kin must be approximately conserved.
    const double ekin_last =
        c.allreduce(md::kinetic_energy(p), mpi::OpSum{});
    const double e_first = res.energy_first + 0.25;  // two 0.5*v^2 = 0.25 each
    const double e_last = res.energy_last + ekin_last;
    EXPECT_NEAR(e_last, e_first, 0.02 * std::abs(e_first));
  });
}

TEST(Simulation, MethodBStepsKeepParticleCountAndArrays) {
  run_ranks(4, [](mpi::Comm& c) {
    const auto cfg_sys = small_system(md::InitialDistribution::kRandom);
    md::LocalParticles p = md::generate_system(c, cfg_sys);

    fcs::Fcs handle(c, "pm");
    handle.set_common(cfg_sys.box);
    handle.set_accuracy(1e-2);
    md::SimulationConfig cfg;
    cfg.box = cfg_sys.box;
    cfg.steps = 4;
    cfg.resort = true;
    cfg.exploit_max_movement = true;
    cfg.dt = 0.005;
    md::SimulationResult res = md::run_simulation(c, handle, p, cfg);

    ASSERT_EQ(res.step_times.size(), 5u);
    for (bool r : res.resorted) EXPECT_TRUE(r);
    // Arrays stay mutually consistent.
    EXPECT_EQ(p.vel.size(), p.size());
    EXPECT_EQ(p.acc.size(), p.size());
    EXPECT_EQ(md::global_count(c, p), 216u);
  });
}

TEST(Simulation, SurrogateMotionReportsTimesAndPreservesCount) {
  auto net = std::make_shared<sim::SwitchedNetwork>();
  run_ranks(8, [](mpi::Comm& c) {
    const auto cfg_sys = small_system(md::InitialDistribution::kProcessGrid,
                                      10 * 10 * 10);
    md::LocalParticles p = md::generate_system(c, cfg_sys);
    fcs::Fcs handle(c, "pm");
    handle.set_common(cfg_sys.box);
    handle.set_accuracy(1e-2);
    md::SimulationConfig cfg;
    cfg.box = cfg_sys.box;
    cfg.steps = 3;
    cfg.resort = true;
    cfg.exploit_max_movement = true;
    cfg.modeled_compute = true;
    cfg.surrogate_motion = true;
    cfg.surrogate_step = 0.05;
    md::SimulationResult res = md::run_simulation(c, handle, p, cfg);
    EXPECT_EQ(md::global_count(c, p), 1000u);
    EXPECT_GT(res.total_time, 0.0);
    for (const auto& t : res.step_times) EXPECT_GE(t.total, 0.0);
  }, net);
}

TEST(Simulation, MethodAVersusBTimingShape) {
  // The paper's core claim, in miniature: with a grid initial distribution
  // and small movement, method B's per-step redistribution (sort + resort)
  // must be cheaper than method A's (sort + restore) after the first step.
  auto net = std::make_shared<sim::SwitchedNetwork>();
  auto run_with = [&](bool resort) {
    std::vector<fcs::PhaseTimes> times;
    run_ranks(8, [&](mpi::Comm& c) {
      const auto cfg_sys = small_system(md::InitialDistribution::kRandom,
                                        12 * 12 * 12);
      md::LocalParticles p = md::generate_system(c, cfg_sys);
      fcs::Fcs handle(c, "pm");
      handle.set_common(cfg_sys.box);
      handle.set_accuracy(1e-2);
      md::SimulationConfig cfg;
      cfg.box = cfg_sys.box;
      cfg.steps = 3;
      cfg.resort = resort;
      cfg.exploit_max_movement = resort;
      cfg.modeled_compute = true;
      cfg.surrogate_motion = true;
      cfg.surrogate_step = 0.02;
      md::SimulationResult res = md::run_simulation(c, handle, p, cfg);
      if (c.rank() == 0) times = res.step_times;
    }, net);
    return times;
  };
  const auto ta = run_with(false);
  const auto tb = run_with(true);
  // After the first step, B's redistribution beats A's.
  double redist_a = 0, redist_b = 0;
  for (std::size_t s = 2; s < ta.size(); ++s) {
    redist_a += ta[s].sort + ta[s].restore;
    redist_b += tb[s].sort + tb[s].resort;
  }
  EXPECT_LT(redist_b, redist_a);
}

}  // namespace
