// Property tests for the redistribution layer (redist/exchange_plan.*):
// deterministic randomized distribution functions drive the fused
// ExchangePlan / FusedBatch path and the legacy one-exchange-per-field path
// over the same data, asserting bit-identical results - including under
// duplicate/ghost targets, empty ranks, self-only traffic, and all-to-one
// hotspots - plus the supporting invariants: the distribution function is
// evaluated exactly once per item, resort indices stay a valid inverse
// permutation under ghost duplication, and steady-state fcs_run steps
// allocate nothing in the exchange path (pool.alloc stops growing).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fcs/fcs.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"
#include "obs/obs.hpp"
#include "pm/pm_solver.hpp"
#include "redist/atasp.hpp"
#include "redist/exchange_plan.hpp"
#include "redist/resort.hpp"
#include "spmd_test_util.hpp"

using fcs_test::run_ranks;
using redist::ExchangeKind;

namespace {

// Deterministic per-item hash (splitmix64): target choices depend only on
// (seed, rank, item), never on evaluation order, so every re-derivation of a
// distribution sees the same targets.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
std::uint64_t item_hash(std::uint64_t seed, int rank, std::size_t i) {
  return mix(seed ^ mix(static_cast<std::uint64_t>(rank) << 32 | i));
}

// The adversarial distribution shapes of the harness.
enum class Scenario {
  kRandomGhosts,  // random owners, duplicate + ghost targets
  kEmptyRanks,    // only every third rank sends, only even ranks receive
  kSelfOnly,      // all traffic stays local
  kAllToOne       // hotspot: everything lands on rank 0
};

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kRandomGhosts: return "RandomGhosts";
    case Scenario::kEmptyRanks: return "EmptyRanks";
    case Scenario::kSelfOnly: return "SelfOnly";
    case Scenario::kAllToOne: return "AllToOne";
  }
  return "?";
}

std::size_t scenario_items(Scenario s, int rank) {
  if (s == Scenario::kEmptyRanks && rank % 3 != 0) return 0;
  return 40 + 13 * static_cast<std::size_t>(rank % 5);
}

void scenario_targets(Scenario s, int p, int rank, std::size_t i,
                      std::vector<int>& t) {
  const std::uint64_t h = item_hash(7771, rank, i);
  switch (s) {
    case Scenario::kRandomGhosts: {
      const int owner = static_cast<int>(h % static_cast<std::uint64_t>(p));
      t.push_back(owner);
      if ((h >> 8) % 4 == 0) t.push_back((owner + 1) % p);
      if ((h >> 16) % 8 == 0) {
        t.push_back(owner);  // duplicate target: two copies to one rank
        t.push_back((owner + 2) % p);
      }
      break;
    }
    case Scenario::kEmptyRanks: {
      const int half = (p + 1) / 2;
      t.push_back(static_cast<int>(h % static_cast<std::uint64_t>(half)) * 2 %
                  p);
      break;
    }
    case Scenario::kSelfOnly:
      t.push_back(rank);
      break;
    case Scenario::kAllToOne:
      t.push_back(0);
      break;
  }
}

template <class T>
void expect_bytes_equal(const std::vector<T>& a, const std::vector<T>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << what;
  }
}

class ExchangeProp
    : public ::testing::TestWithParam<std::tuple<int, ExchangeKind, Scenario>> {
};

std::string param_name(
    const ::testing::TestParamInfo<ExchangeProp::ParamType>& info) {
  const auto [p, kind, s] = info.param;
  return std::string(scenario_name(s)) +
         (kind == ExchangeKind::kDense ? "Dense" : "Sparse") + "P" +
         std::to_string(p);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExchangeProp,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 12),
                       ::testing::Values(ExchangeKind::kDense,
                                         ExchangeKind::kSparse),
                       ::testing::Values(Scenario::kRandomGhosts,
                                         Scenario::kEmptyRanks,
                                         Scenario::kSelfOnly,
                                         Scenario::kAllToOne)),
    param_name);

// Fused plan applies (single-field and multi-segment FusedBatch) must be
// bit-identical to the legacy one-exchange-per-field path for every
// distribution shape.
TEST_P(ExchangeProp, FusedPathIsBitIdenticalToPerFieldLegacy) {
  const auto [p, kind, scenario] = GetParam();
  run_ranks(p, [p = p, kind = kind, scenario = scenario](mpi::Comm& c) {
    const int r = c.rank();
    const std::size_t n = scenario_items(scenario, r);
    auto dist = [&](std::size_t i, std::vector<int>& t) {
      scenario_targets(scenario, p, r, i, t);
    };

    // Three payload fields of different shapes: 1 x double, 3 x double
    // (Vec3-like), 2 x int64.
    std::vector<double> f1(n), f3(3 * n);
    std::vector<std::int64_t> i2(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t h = item_hash(99, r, i);
      f1[i] = static_cast<double>(h % 100000) * 1e-3;
      for (int k = 0; k < 3; ++k)
        f3[3 * i + static_cast<std::size_t>(k)] =
            static_cast<double>((h >> (8 * k)) & 0xffff);
      i2[2 * i] = static_cast<std::int64_t>(h);
      i2[2 * i + 1] = static_cast<std::int64_t>(r) << 32 |
                      static_cast<std::int64_t>(i);
    }

    // Legacy reference: one fine-grained exchange per field (item structs).
    struct F1 { double v; };
    struct F3 { double v[3]; };
    struct I2 { std::int64_t v[2]; };
    std::vector<F1> s1(n);
    std::vector<F3> s3(n);
    std::vector<I2> s2(n);
    for (std::size_t i = 0; i < n; ++i) {
      s1[i].v = f1[i];
      std::memcpy(s3[i].v, &f3[3 * i], sizeof s3[i].v);
      std::memcpy(s2[i].v, &i2[2 * i], sizeof s2[i].v);
    }
    auto item_dist = [&](const auto&, std::size_t i, std::vector<int>& t) {
      dist(i, t);
    };
    const std::vector<F1> ref1 =
        redist::fine_grained_redistribute(c, s1, item_dist, kind);
    const std::vector<F3> ref3 =
        redist::fine_grained_redistribute(c, s3, item_dist, kind);
    const std::vector<I2> ref2 =
        redist::fine_grained_redistribute(c, s2, item_dist, kind);

    // Plan path: build once, negotiate counts, apply each field.
    redist::ExchangePlan plan = redist::ExchangePlan::build(c, n, dist, kind);
    plan.negotiate(c);
    ASSERT_EQ(plan.n_recv_total(), ref1.size());
    const std::vector<double> a1 = plan.apply<double>(c, f1.data(), 1);
    const std::vector<double> a3 = plan.apply<double>(c, f3.data(), 3);
    const std::vector<std::int64_t> a2 =
        plan.apply<std::int64_t>(c, i2.data(), 2);
    ASSERT_EQ(a1.size(), ref1.size());
    EXPECT_EQ(std::memcmp(a1.data(), ref1.data(), a1.size() * sizeof(double)),
              0);
    ASSERT_EQ(a3.size(), 3 * ref3.size());
    EXPECT_EQ(std::memcmp(a3.data(), ref3.data(), a3.size() * sizeof(double)),
              0);
    ASSERT_EQ(a2.size(), 2 * ref2.size());
    EXPECT_EQ(
        std::memcmp(a2.data(), ref2.data(), a2.size() * sizeof(std::int64_t)),
        0);

    // Fused path: all three fields in ONE message per partner. Outputs alias
    // the inputs, like the fcs resort batch does.
    std::vector<double> g1 = f1, g3 = f3;
    std::vector<std::int64_t> g2 = i2;
    redist::FusedBatch batch(c, plan);
    batch.add(g1, 1, g1);
    batch.add(g3, 3, g3);
    batch.add(g2, 2, g2);
    batch.execute();
    expect_bytes_equal(g1, a1, "fused f1");
    expect_bytes_equal(g3, a3, "fused f3");
    expect_bytes_equal(g2, a2, "fused i2");

    // Conservation across the communicator.
    const auto slots = c.allreduce(
        static_cast<std::uint64_t>(plan.n_send_slots()), mpi::OpSum{});
    const auto recvd = c.allreduce(
        static_cast<std::uint64_t>(plan.n_recv_total()), mpi::OpSum{});
    EXPECT_EQ(slots, recvd);
  });
}

// An exchange plan is reusable: applying the same plan repeatedly (the
// steady-state fcs_run shape) keeps producing the identical bytes, and only
// the first acquire of each staging buffer may allocate.
TEST_P(ExchangeProp, RepeatedAppliesAreStableAndStopAllocating) {
  const auto [p, kind, scenario] = GetParam();
  auto rec = std::make_shared<obs::Recorder>();
  sim::EngineConfig ecfg;
  ecfg.nranks = p;
  ecfg.recorder = rec;
  sim::run_spmd(ecfg, [&, p = p, kind = kind,
                       scenario = scenario](sim::RankCtx& ctx) {
    mpi::Comm c = mpi::Comm::world(ctx);
    const int r = c.rank();
    const std::size_t n = scenario_items(scenario, r);
    auto dist = [&](std::size_t i, std::vector<int>& t) {
      scenario_targets(scenario, p, r, i, t);
    };
    std::vector<double> data(3 * n);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<double>(item_hash(5, r, i));

    redist::ExchangePlan plan = redist::ExchangePlan::build(c, n, dist, kind);
    plan.negotiate(c);
    obs::RankObs* const o = ctx.obs();
    std::vector<double> first;
    for (int step = 0; step < 8; ++step) {
      if (o != nullptr) o->set_epoch(step);
      const std::vector<double> out = plan.apply<double>(c, data.data(), 3);
      if (step == 0)
        first = out;
      else
        expect_bytes_equal(out, first, "repeated apply");
    }
  });
  // The staging buffers are acquired from the communicator pool; after the
  // first two applies every acquire must be a reuse.
  const auto reduced = rec->reduce_counters();
  const auto it = reduced.find("pool.alloc");
  if (it != reduced.end()) {
    for (const auto& [epoch, summary] : it->second.by_epoch) {
      if (epoch >= 2) {
        EXPECT_EQ(summary.sum, 0.0) << "pool.alloc grew in epoch " << epoch;
      }
    }
  }
}

// Satellite: the distribution function is evaluated exactly once per item -
// the plan caches the targets instead of re-deriving them for the
// pack/count/offset passes.
TEST(ExchangeProp, DistributionFunctionRunsExactlyOncePerItem) {
  for (const ExchangeKind kind :
       {ExchangeKind::kDense, ExchangeKind::kSparse}) {
    run_ranks(3, [kind](mpi::Comm& c) {
      const std::size_t n = 57;
      std::vector<double> items(n);
      for (std::size_t i = 0; i < n; ++i)
        items[i] = static_cast<double>(item_hash(11, c.rank(), i));
      std::vector<int> calls(n, 0);
      auto counted = redist::fine_grained_redistribute(
          c, items,
          [&](const double&, std::size_t i, std::vector<int>& t) {
            ++calls[i];
            t.push_back(static_cast<int>(
                item_hash(12, c.rank(), i) % static_cast<std::uint64_t>(
                                                 c.size())));
            if (item_hash(13, c.rank(), i) % 3 == 0)
              t.push_back(c.rank());  // occasional ghost copy
          },
          kind);
      (void)counted;
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(calls[i], 1) << "item " << i;
    });
  }
}

// Ghost duplication in the primary exchange must not corrupt the resort
// machinery: the owned copies' origin indices invert into a valid
// permutation, the zero-communication ResortPlan accepts them, and both the
// per-field plan resort and the fused batch reproduce the legacy
// resort_values bytes.
TEST_P(ExchangeProp, ResortIndicesStayInversePermutationUnderGhosts) {
  const auto [p, kind, scenario] = GetParam();
  if (scenario != Scenario::kRandomGhosts) GTEST_SKIP();
  run_ranks(p, [p = p, kind = kind](mpi::Comm& c) {
    const int r = c.rank();
    const std::size_t n = 30 + 7 * static_cast<std::size_t>(r % 4);
    struct P {
      double x;
      std::uint64_t origin;
    };
    std::vector<P> items(n);
    for (std::size_t i = 0; i < n; ++i)
      items[i] = {static_cast<double>(item_hash(31, r, i)),
                  redist::make_index(r, i)};
    // Exactly one OWNER target per item plus ghost copies; ownership is
    // recomputable from the origin, so received copies sort themselves into
    // owned vs ghost without side channels.
    auto owner_of = [p](std::uint64_t origin) {
      return static_cast<int>(mix(origin) % static_cast<std::uint64_t>(p));
    };
    const std::vector<P> received = redist::fine_grained_redistribute(
        c, items,
        [&](const P& pt, std::size_t, std::vector<int>& t) {
          const int owner = owner_of(pt.origin);
          t.push_back(owner);
          if (p > 1 && mix(pt.origin ^ 0xabcd) % 3 == 0)
            t.push_back((owner + 1) % p);  // ghost copy
        },
        kind);

    std::vector<std::uint64_t> origin_of_current;
    for (const P& pt : received)
      if (owner_of(pt.origin) == r) origin_of_current.push_back(pt.origin);

    const std::vector<std::uint64_t> resort_indices =
        redist::invert_origin_indices(c, origin_of_current, n, kind);
    const redist::ResortPlan rp =
        redist::ResortPlan::build(c, resort_indices, origin_of_current, kind);
    ASSERT_TRUE(rp.valid());
    ASSERT_EQ(rp.n_changed(), origin_of_current.size());

    // Every original particle names exactly one target, and round-tripping a
    // field through the plan matches the legacy per-field resort bitwise.
    std::vector<double> field(2 * n);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = static_cast<double>(item_hash(32, r, i)) * 1e-6;
    const std::vector<double> legacy = redist::resort_values(
        c, resort_indices, field, 2, rp.n_changed(), kind);
    const std::vector<double> planned = rp.resort(c, field, 2);
    expect_bytes_equal(planned, legacy, "resort plan vs resort_values");

    std::vector<double> fused = field;
    std::vector<double> field_b(n);
    for (std::size_t i = 0; i < n; ++i) field_b[i] = field[2 * i + 1];
    const std::vector<double> legacy_b = redist::resort_values(
        c, resort_indices, field_b, 1, rp.n_changed(), kind);
    std::vector<double> fused_b = field_b;
    redist::FusedBatch batch(c, rp.plan(), rp.placement());
    batch.add(fused, 2, fused);
    batch.add(fused_b, 1, fused_b);
    batch.execute();
    expect_bytes_equal(fused, legacy, "fused resort field 1");
    expect_bytes_equal(fused_b, legacy_b, "fused resort field 2");

    // The placement really is a permutation: every current element claimed.
    std::vector<char> hit(rp.n_changed(), 0);
    for (std::size_t k = 0; k < rp.n_changed(); ++k) {
      ASSERT_LT(rp.placement()[k], rp.n_changed());
      ASSERT_FALSE(hit[rp.placement()[k]]);
      hit[rp.placement()[k]] = 1;
    }
  });
}

// ---------------------------------------------------------------------------
// Allocation regression over full fcs_run steps: once warmed up, the fused
// exchange path performs zero heap allocations - pool.alloc stops growing -
// for both the dense (fixed:B) and sparse (fixed:B+mm neighborhood) paths.

md::SystemConfig prop_system() {
  md::SystemConfig sys;
  sys.box = domain::Box({0, 0, 0}, {16, 16, 16}, {true, true, true});
  sys.n_global = 512;
  sys.distribution = md::InitialDistribution::kRandom;
  return sys;
}

double pool_alloc_after_warmup(const std::string& plan_spec, int steps,
                               int warmup) {
  auto rec = std::make_shared<obs::Recorder>();
  sim::EngineConfig ecfg;
  ecfg.nranks = 8;
  ecfg.stack_bytes = 512 * 1024;
  ecfg.recorder = rec;
  sim::Engine engine(ecfg);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm = mpi::Comm::world(ctx);
    const md::SystemConfig sys = prop_system();
    md::LocalParticles particles = md::generate_system(comm, sys);
    fcs::Fcs handle(comm, "pm");
    handle.set_common(sys.box);
    handle.set_accuracy(1e-3);
    auto& pm_solver = dynamic_cast<pm::PmSolver&>(handle.solver());
    pm_solver.set_cutoff(1.5);
    pm_solver.set_mesh(16);
    md::SimulationConfig cfg;
    cfg.steps = steps;
    cfg.modeled_compute = true;
    cfg.surrogate_motion = true;
    cfg.surrogate_step = 0.1;
    cfg.box = sys.box;
    cfg.plan = plan::parse_plan_spec(plan_spec);
    (void)md::run_simulation(comm, handle, particles, cfg);
  });
  const auto reduced = rec->reduce_counters();
  // Sanity: the fused path actually ran.
  const auto fused = reduced.find("redist.fused.batches");
  EXPECT_TRUE(fused != reduced.end() && fused->second.totals.sum > 0.0)
      << plan_spec;
  double late = 0.0;
  if (const auto it = reduced.find("pool.alloc"); it != reduced.end())
    for (const auto& [epoch, summary] : it->second.by_epoch)
      if (epoch > warmup) late += summary.sum;
  return late;
}

TEST(ExchangeProp, SteadyStateRunsDoNotAllocateDense) {
  EXPECT_EQ(pool_alloc_after_warmup("fixed:B", 14, 7), 0.0);
}

TEST(ExchangeProp, SteadyStateRunsDoNotAllocateSparse) {
  EXPECT_EQ(pool_alloc_after_warmup("fixed:B+mm,merge,neighborhood", 14, 7),
            0.0);
}

}  // namespace
