// Shared helpers for tests that run SPMD rank bodies on the sim engine.
#pragma once

#include <functional>
#include <memory>

#include "minimpi/comm.hpp"
#include "sim/engine.hpp"

namespace fcs_test {

/// Run `body` across `nranks` simulated ranks on an ideal network and return
/// the engine makespan. Exceptions from any rank propagate to the caller.
/// Honors the FCS_FAULT_* env knobs so CI can replay the whole suite under
/// deterministic fault injection (see .github/workflows/ci.yml).
inline double run_ranks(int nranks,
                        const std::function<void(mpi::Comm&)>& body,
                        std::shared_ptr<const sim::NetworkModel> net = nullptr) {
  sim::EngineConfig cfg;
  cfg.nranks = nranks;
  if (net) cfg.network = std::move(net);
  cfg.fault_plan = sim::FaultPlan::from_env();
  return sim::run_spmd(cfg, [&body](sim::RankCtx& ctx) {
    mpi::Comm comm = mpi::Comm::world(ctx);
    body(comm);
  });
}

}  // namespace fcs_test
