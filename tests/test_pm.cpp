#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "pm/charge_grid.hpp"
#include "pm/direct.hpp"
#include "pm/dist_fft.hpp"
#include "pm/ewald.hpp"
#include "pm/fft.hpp"
#include "pm/pm_solver.hpp"
#include "redist/resort.hpp"
#include "spmd_test_util.hpp"
#include "support/rng.hpp"

using domain::Box;
using domain::Vec3;
using fcs_test::run_ranks;

namespace {

// ---------------------------------------------------------------------------
// FFT

TEST(Fft, MatchesNaiveDft) {
  fcs::Rng rng(31);
  for (std::size_t n : {1u, 2u, 8u, 64u, 256u}) {
    std::vector<pm::Complex> data(n);
    for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto expected = pm::dft_reference(data, -1);
    auto fftd = data;
    pm::fft(fftd, -1);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fftd[i].real(), expected[i].real(), 1e-9);
      EXPECT_NEAR(fftd[i].imag(), expected[i].imag(), 1e-9);
    }
  }
}

TEST(Fft, RoundTripScalesByN) {
  fcs::Rng rng(32);
  std::vector<pm::Complex> data(128);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto copy = data;
  pm::fft(copy, -1);
  pm::fft(copy, +1);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(copy[i].real(), 128.0 * data[i].real(), 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<pm::Complex> data(12);
  EXPECT_THROW(pm::fft(data, -1), fcs::Error);
}

TEST(Fft, ThreeDimensionalRoundTrip) {
  fcs::Rng rng(33);
  const std::size_t nx = 4, ny = 8, nz = 2;
  std::vector<pm::Complex> mesh(nx * ny * nz);
  for (auto& c : mesh) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto copy = mesh;
  pm::fft3d(copy, nx, ny, nz, -1);
  pm::fft3d(copy, nx, ny, nz, +1);
  const double scale = static_cast<double>(nx * ny * nz);
  for (std::size_t i = 0; i < mesh.size(); ++i)
    EXPECT_NEAR(copy[i].real(), scale * mesh[i].real(), 1e-9);
}

class DistFftRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DistFftRanks, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST_P(DistFftRanks, MatchesSerial3dFft) {
  const int p = GetParam();
  const std::size_t nx = 8, ny = 4, nz = 4;
  // Build the same global mesh on all ranks (deterministic).
  std::vector<pm::Complex> global(nx * ny * nz);
  fcs::Rng rng(34);
  for (auto& c : global) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto expected = global;
  pm::fft3d(expected, nx, ny, nz, -1);

  run_ranks(p, [&](mpi::Comm& c) {
    pm::DistFft3d fft(c, nx, ny, nz);
    std::vector<pm::Complex> slab(fft.slab_planes() * ny * nz);
    for (std::size_t i = 0; i < slab.size(); ++i)
      slab[i] = global[fft.slab_begin() * ny * nz + i];
    fft.forward(slab);
    for (std::size_t i = 0; i < slab.size(); ++i) {
      EXPECT_NEAR(slab[i].real(),
                  expected[fft.slab_begin() * ny * nz + i].real(), 1e-9);
      EXPECT_NEAR(slab[i].imag(),
                  expected[fft.slab_begin() * ny * nz + i].imag(), 1e-9);
    }
    // Backward returns the scaled original.
    fft.backward(slab);
    const double scale = static_cast<double>(nx * ny * nz);
    for (std::size_t i = 0; i < slab.size(); ++i)
      EXPECT_NEAR(slab[i].real(),
                  scale * global[fft.slab_begin() * ny * nz + i].real(), 1e-8);
  });
}

TEST(DistFft, PlaneOwnership) {
  run_ranks(3, [](mpi::Comm& c) {
    pm::DistFft3d fft(c, 8, 4, 4);
    for (std::size_t x = 0; x < 8; ++x) {
      const int owner = fft.owner_of_plane(x);
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, 3);
    }
    // My own planes are owned by me.
    for (std::size_t x = fft.slab_begin(); x < fft.slab_end(); ++x)
      EXPECT_EQ(fft.owner_of_plane(x), c.rank());
  });
}

// ---------------------------------------------------------------------------
// CIC charge assignment

TEST(Cic, WeightsSumToOneAndAreLocal) {
  Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  const std::array<std::size_t, 3> mesh{8, 8, 8};
  fcs::Rng rng(35);
  for (int t = 0; t < 200; ++t) {
    const Vec3 pos{rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)};
    const auto stencil = pm::cic_stencil(box, mesh, pos);
    double sum = 0;
    for (const auto& pt : stencil) {
      EXPECT_GE(pt.weight, 0.0);
      EXPECT_LT(pt.cell, 512u);
      sum += pt.weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Cic, ParticleAtCellCenterUsesOneCell) {
  Box box({0, 0, 0}, {8, 8, 8}, {true, true, true});
  const std::array<std::size_t, 3> mesh{8, 8, 8};
  // Cell (2,3,4) center is at (2.5, 3.5, 4.5).
  const auto stencil = pm::cic_stencil(box, mesh, {2.5, 3.5, 4.5});
  double wmax = 0;
  std::uint64_t argmax = 0;
  for (const auto& pt : stencil)
    if (pt.weight > wmax) {
      wmax = pt.weight;
      argmax = pt.cell;
    }
  EXPECT_NEAR(wmax, 1.0, 1e-12);
  EXPECT_EQ(argmax, (2u * 8 + 3) * 8 + 4);
}

TEST(Influence, ZeroModeAndSymmetry) {
  Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  const std::array<std::size_t, 3> mesh{16, 16, 16};
  EXPECT_EQ(pm::influence(box, mesh, {0, 0, 0}, 1.0), 0.0);
  // G(k) = G(-k): index m and M - m.
  const double a = pm::influence(box, mesh, {3, 5, 7}, 1.0);
  const double b = pm::influence(box, mesh, {13, 11, 9}, 1.0);
  EXPECT_NEAR(a, b, 1e-12 * std::abs(a));
  EXPECT_GT(a, 0.0);
}

// ---------------------------------------------------------------------------
// Ewald reference

// NaCl rock salt: Madelung constant -1.747564594633...
TEST(Ewald, ReproducesMadelungConstant) {
  // 4x4x4 unit cube lattice of alternating charges, spacing 1.
  const int m = 4;
  Box box({0, 0, 0}, {double(m), double(m), double(m)}, {true, true, true});
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int x = 0; x < m; ++x)
    for (int y = 0; y < m; ++y)
      for (int z = 0; z < m; ++z) {
        pos.push_back({x + 0.5, y + 0.5, z + 0.5});
        q.push_back(((x + y + z) % 2 == 0) ? 1.0 : -1.0);
      }
  const pm::EwaldParams params = pm::tune_ewald(box, 1.9, 1e-6);
  std::vector<double> phi;
  std::vector<Vec3> field;
  pm::ewald_reference(box, pos, q, params, phi, field);
  // Each ion sees phi_i = q_i * M / a with a = 1 (nearest-neighbor distance).
  const double madelung = -1.7475645946;
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_NEAR(phi[i] / q[i], madelung, 5e-4);
  // Fields vanish by symmetry on the perfect lattice.
  for (const Vec3& e : field) EXPECT_LT(e.norm(), 1e-6);
}

TEST(Ewald, FieldIsMinusEnergyGradient) {
  // U = 1/2 sum q_i phi_i; force on particle k = q_k E_k = -dU/dr_k.
  Box box({0, 0, 0}, {6, 6, 6}, {true, true, true});
  fcs::Rng rng(36);
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 12; ++i) {
    pos.push_back({rng.uniform(0, 6), rng.uniform(0, 6), rng.uniform(0, 6)});
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  const pm::EwaldParams params = pm::tune_ewald(box, 2.4, 1e-8);
  std::vector<double> phi;
  std::vector<Vec3> field;
  pm::ewald_reference(box, pos, q, params, phi, field);

  const double h = 1e-5;
  for (std::size_t k = 0; k < 3; ++k) {  // a few particles suffice
    for (int d = 0; d < 3; ++d) {
      auto shifted = pos;
      shifted[k][d] += h;
      std::vector<double> phi_p, phi_m;
      std::vector<Vec3> f_unused;
      pm::ewald_reference(box, shifted, q, params, phi_p, f_unused);
      shifted[k][d] -= 2 * h;
      pm::ewald_reference(box, shifted, q, params, phi_m, f_unused);
      const double up = pm::total_energy(q, phi_p);
      const double um = pm::total_energy(q, phi_m);
      const double force_fd = -(up - um) / (2 * h);
      EXPECT_NEAR(q[k] * field[k][d], force_fd,
                  5e-4 * std::max(1.0, std::abs(force_fd)));
    }
  }
}

TEST(Ewald, InsensitiveToSplittingParameter) {
  // The physical result must not depend on alpha/rcut/kmax choices.
  Box box({0, 0, 0}, {5, 5, 5}, {true, true, true});
  fcs::Rng rng(37);
  std::vector<Vec3> pos;
  std::vector<double> q;
  for (int i = 0; i < 10; ++i) {
    pos.push_back({rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 5)});
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  std::vector<double> phi_a, phi_b;
  std::vector<Vec3> f_a, f_b;
  pm::ewald_reference(box, pos, q, pm::tune_ewald(box, 2.0, 1e-8), phi_a, f_a);
  pm::ewald_reference(box, pos, q, pm::tune_ewald(box, 1.4, 1e-8), phi_b, f_b);
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_NEAR(phi_a[i], phi_b[i], 1e-5 * std::max(1.0, std::abs(phi_a[i])));
}

TEST(Direct, TwoBodyValues) {
  std::vector<Vec3> pos = {{0, 0, 0}, {2, 0, 0}};
  std::vector<double> q = {3.0, -2.0};
  std::vector<double> phi;
  std::vector<Vec3> field;
  pm::direct_reference(pos, q, phi, field);
  EXPECT_DOUBLE_EQ(phi[0], -1.0);   // -2 / 2
  EXPECT_DOUBLE_EQ(phi[1], 1.5);    // 3 / 2
  EXPECT_DOUBLE_EQ(field[0].x, 0.5);   // -2 * (-2)/8
  EXPECT_DOUBLE_EQ(field[1].x, 0.75);  // 3 * 2/8
}

// ---------------------------------------------------------------------------
// PM solver against the Ewald oracle

struct PmOracle {
  std::vector<Vec3> pos;
  std::vector<double> q;
  std::vector<double> phi;
  std::vector<Vec3> field;
  Box box{{0, 0, 0}, {8, 8, 8}, {true, true, true}};
};

PmOracle make_pm_oracle(std::size_t n) {
  PmOracle o;
  fcs::Rng rng(38);
  // Jittered ionic lattice: near-neutral and homogeneous like the paper's
  // silica system.
  const int m = static_cast<int>(std::round(std::cbrt(double(n))));
  for (int x = 0; x < m; ++x)
    for (int y = 0; y < m; ++y)
      for (int z = 0; z < m; ++z) {
        Vec3 p{(x + 0.5) * 8.0 / m, (y + 0.5) * 8.0 / m, (z + 0.5) * 8.0 / m};
        p.x += rng.uniform(-0.3, 0.3);
        p.y += rng.uniform(-0.3, 0.3);
        p.z += rng.uniform(-0.3, 0.3);
        o.pos.push_back(o.box.wrap(p));
        o.q.push_back(((x + y + z) % 2 == 0) ? 1.0 : -1.0);
      }
  pm::ewald_reference(o.box, o.pos, o.q, pm::tune_ewald(o.box, 2.8, 1e-8),
                      o.phi, o.field);
  return o;
}

class PmSolverRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PmSolverRanks, ::testing::Values(1, 2, 4, 8));

TEST_P(PmSolverRanks, MatchesEwaldReference) {
  const int p = GetParam();
  const PmOracle oracle = make_pm_oracle(6 * 6 * 6);
  run_ranks(p, [&](mpi::Comm& c) {
    // Deal particles round-robin to the ranks.
    std::vector<Vec3> pos;
    std::vector<double> q;
    std::vector<std::size_t> global_index;
    for (std::size_t i = 0; i < oracle.pos.size(); ++i) {
      if (static_cast<int>(i % p) != c.rank()) continue;
      pos.push_back(oracle.pos[i]);
      q.push_back(oracle.q[i]);
      global_index.push_back(i);
    }
    pm::PmSolver solver;
    solver.set_box(oracle.box);
    solver.set_accuracy(1e-3);
    solver.set_cutoff(2.2);
    solver.set_mesh(32);
    solver.tune(c, pos, q);
    fcs::SolveOptions opts;
    auto result = solver.solve(c, pos, q, opts);

    // Match results back to the oracle through the origin indices.
    double err2 = 0, ref2 = 0;
    for (std::size_t i = 0; i < result.positions.size(); ++i) {
      const int src_rank = redist::index_rank(result.origin[i]);
      const auto src_pos = redist::index_pos(result.origin[i]);
      // Reconstruct the global index the same way the input was dealt.
      const std::size_t gi = static_cast<std::size_t>(src_pos) * p +
                             static_cast<std::size_t>(src_rank);
      ASSERT_LT(gi, oracle.pos.size());
      err2 += std::pow(result.potentials[i] - oracle.phi[gi], 2);
      ref2 += std::pow(oracle.phi[gi], 2);
      const Vec3 df = result.field[i] - oracle.field[gi];
      EXPECT_LT(df.norm(), 0.25) << "field deviates strongly at " << gi;
    }
    err2 = c.allreduce(err2, mpi::OpSum{});
    ref2 = c.allreduce(ref2, mpi::OpSum{});
    EXPECT_LT(std::sqrt(err2 / ref2), 0.03);

    // Total energy to the paper's 1e-3 band.
    double e_local = 0;
    for (std::size_t i = 0; i < result.charges.size(); ++i)
      e_local += result.charges[i] * result.potentials[i];
    const double e_pm = 0.5 * c.allreduce(e_local, mpi::OpSum{});
    const double e_ref = pm::total_energy(oracle.q, oracle.phi);
    EXPECT_NEAR(e_pm, e_ref, 2e-3 * std::abs(e_ref));
  });
}

TEST(PmSolverModes, NeighborhoodPathProducesSameResult) {
  // Feed the solver its own output (method B style) with a small movement:
  // it must switch to neighborhood communication and produce identical
  // physics.
  const PmOracle oracle = make_pm_oracle(5 * 5 * 5);
  run_ranks(8, [&](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    for (std::size_t i = 0; i < oracle.pos.size(); ++i) {
      if (static_cast<int>(i % 8) != c.rank()) continue;
      pos.push_back(oracle.pos[i]);
      q.push_back(oracle.q[i]);
    }
    pm::PmSolver solver;
    solver.set_box(oracle.box);
    solver.set_accuracy(1e-3);
    solver.set_cutoff(1.9);
    solver.set_mesh(32);
    solver.tune(c, pos, q);

    fcs::SolveOptions first;
    auto r1 = solver.solve(c, pos, q, first);
    EXPECT_FALSE(solver.last_used_neighborhood());

    fcs::SolveOptions second;
    second.input_in_solver_order = true;
    second.max_particle_move = 0.0;
    auto r2 = solver.solve(c, r1.positions, r1.charges, second);
    EXPECT_TRUE(solver.last_used_neighborhood());
    ASSERT_EQ(r1.potentials.size(), r2.potentials.size());
    for (std::size_t i = 0; i < r1.potentials.size(); ++i)
      EXPECT_NEAR(r1.potentials[i], r2.potentials[i], 1e-9);
  });
}

}  // namespace
