// Rank-crash fault model and ULFM-style recovery (DESIGN.md §13): failure
// detection and agreement, communicator shrink, buddy checkpointing, and
// the rollback-and-replay driver in md::run_simulation.
//
// The determinism claim tested here is CROSS-VARIANT: the recovered final
// state depends only on (rollback step, dead rank set), never on the crash's
// virtual time, the phase it interrupted, or the network model - so crashes
// planted at four different phase fractions, on two networks, must all
// produce bit-identical particle state. Bit-identity with the original
// p-rank run is not a goal (the shrunk communicator sums in a different
// order by construction).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "fcs/checkpoint.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"
#include "minimpi/buffer_pool.hpp"
#include "minimpi/comm.hpp"
#include "obs/obs.hpp"
#include "pm/pm_solver.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "spmd_test_util.hpp"

namespace {

double counter_sum(const obs::Recorder& rec, const std::string& name) {
  const auto reduced = rec.reduce_counters();
  const auto it = reduced.find(name);
  return it != reduced.end() ? it->second.totals.sum : 0.0;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

std::uint64_t double_bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Order-independent global hash of the physical particle state: per
/// particle a mixed hash of the position / velocity / charge bit patterns,
/// XOR-combined locally and across ranks. Invariant under any resort or
/// redistribution, sensitive to a single flipped mantissa bit.
std::uint64_t particle_checksum(const mpi::Comm& c,
                                const md::LocalParticles& p) {
  std::uint64_t local = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    h = mix64(h, double_bits(p.pos[i].x));
    h = mix64(h, double_bits(p.pos[i].y));
    h = mix64(h, double_bits(p.pos[i].z));
    h = mix64(h, double_bits(p.vel[i].x));
    h = mix64(h, double_bits(p.vel[i].y));
    h = mix64(h, double_bits(p.vel[i].z));
    h = mix64(h, double_bits(p.q[i]));
    local ^= h;
  }
  return c.allreduce(local, mpi::OpXor{});
}

// --- minimpi-level protocol tests ------------------------------------------

TEST(Recovery, DetectRevokeShrinkAgree) {
  // Rank 2 crashes. Ranks 0 and 1 are blocked on receives from it and learn
  // of the death through the failure detector; rank 3 is blocked on an
  // unrelated receive from a LIVE peer and can only be freed by the
  // revocation - the wake path a recovery driver depends on.
  auto rec = std::make_shared<obs::Recorder>();
  sim::EngineConfig cfg;
  cfg.nranks = 4;
  cfg.fault_plan.crashes.push_back({2, 2.0e-4});
  cfg.recorder = rec;
  sim::run_spmd(cfg, [](sim::RankCtx& ctx) {
    mpi::Comm c = mpi::Comm::world(ctx);
    if (c.rank() == 2) {
      ctx.advance(1.0e-3);
      ctx.yield();  // first engine interaction past the crash time: dies here
      ADD_FAILURE() << "crashed rank kept running";
      return;
    }
    int payload = 0;
    bool notified = false;
    try {
      if (c.rank() == 3) {
        c.recv(&payload, 1, 1, 777);  // rank 1 never sends this
      } else {
        c.recv(&payload, 1, 2, 777);
      }
    } catch (const mpi::RankFailedError& e) {
      notified = true;
      if (c.rank() == 3) {
        EXPECT_EQ(e.failed_rank(), -1);  // woken by the revocation
      } else {
        // The first detector sees the dead peer; the second may already
        // observe the revocation the first raised (engine checks the
        // revoke epoch before the dead-source timeout).
        EXPECT_TRUE(e.failed_rank() == 2 || e.failed_rank() == -1)
            << e.failed_rank();
      }
      c.revoke();  // idempotent: every survivor may revoke
    }
    EXPECT_TRUE(notified);

    mpi::ShrinkResult sr = c.shrink_recover(1);
    ASSERT_EQ(sr.failed.size(), 1u);
    EXPECT_EQ(sr.failed[0], 2);
    ASSERT_EQ(sr.comm.size(), 3);
    // Survivors keep their relative order: world ranks 0, 1, 3.
    EXPECT_EQ(sr.comm.world_rank(0), 0);
    EXPECT_EQ(sr.comm.world_rank(1), 1);
    EXPECT_EQ(sr.comm.world_rank(2), 3);
    // The shrunk communicator is immediately usable for collectives.
    const int sum = sr.comm.allreduce(1, mpi::OpSum{});
    EXPECT_EQ(sum, 3);
  });
  EXPECT_GE(counter_sum(*rec, "sim.fault.detected"), 1.0);
  EXPECT_GE(counter_sum(*rec, "sim.fault.revokes"), 1.0);
  EXPECT_GE(counter_sum(*rec, "recover.agree.calls"), 3.0);
  EXPECT_GE(counter_sum(*rec, "recover.shrink.calls"), 3.0);
}

TEST(Recovery, MaxRetryEscalatesToPeerFailure) {
  // Unreliable link with every transmission dropped: the reliable channel
  // must give up after max_retry attempts and report the peer as failed
  // instead of retrying forever.
  auto rec = std::make_shared<obs::Recorder>();
  sim::EngineConfig cfg;
  cfg.nranks = 2;
  cfg.fault_plan.drop_rate = 1.0;
  cfg.fault_plan.max_retry = 4;
  cfg.fault_plan.seed = 3;
  cfg.recorder = rec;
  EXPECT_THROW(sim::run_spmd(cfg,
                             [](sim::RankCtx& ctx) {
                               mpi::Comm c = mpi::Comm::world(ctx);
                               const int x = c.rank();
                               c.send(&x, 1, 1 - c.rank(), 5);
                             }),
               mpi::RankFailedError);
  EXPECT_GE(counter_sum(*rec, "sim.fault.peer_reports"), 1.0);
}

// --- buffer pool reclamation (shrink must not leak retained buffers) -------

TEST(Recovery, BufferPoolAdoptFromMovesRetainedBuffers) {
  mpi::BufferPool a;
  mpi::BufferPool b;
  // Stock pool `a` with three retained buffers of distinct capacity classes
  // (acquire all before releasing - a released buffer would be regrown to
  // serve the next, larger request).
  std::vector<std::byte> b1 = a.acquire(500, nullptr);
  std::vector<std::byte> b2 = a.acquire(2000, nullptr);
  std::vector<std::byte> b3 = a.acquire(9000, nullptr);
  a.release(std::move(b1), nullptr);
  a.release(std::move(b2), nullptr);
  a.release(std::move(b3), nullptr);
  ASSERT_EQ(a.retained_buffers(), 3u);
  const std::size_t a_bytes = a.retained_bytes();

  b.adopt_from(a, nullptr);
  EXPECT_EQ(a.retained_buffers(), 0u);
  EXPECT_EQ(a.retained_bytes(), 0u);
  EXPECT_EQ(b.retained_buffers(), 3u);
  EXPECT_EQ(b.retained_bytes(), a_bytes);

  // Adoption into a full pool frees the excess instead of over-retaining.
  setenv("FCS_POOL_MAX_BUFFERS", "2", 1);
  mpi::BufferPool tight;
  unsetenv("FCS_POOL_MAX_BUFFERS");
  tight.adopt_from(b, nullptr);
  EXPECT_EQ(b.retained_buffers(), 0u);
  EXPECT_EQ(tight.retained_buffers(), 2u);
}

// --- checkpoint store ------------------------------------------------------

TEST(Recovery, CheckpointIntervalFromEnv) {
  EXPECT_EQ(fcs::CheckpointStore::interval_from_env(7), 7);
  setenv("FCS_CKPT_INTERVAL", "3", 1);
  EXPECT_EQ(fcs::CheckpointStore::interval_from_env(7), 3);
  unsetenv("FCS_CKPT_INTERVAL");
  EXPECT_FALSE(fcs::CheckpointStore(0).enabled());
  fcs::CheckpointStore s(4);
  EXPECT_TRUE(s.enabled());
  EXPECT_TRUE(s.due(0));
  EXPECT_FALSE(s.due(3));
  EXPECT_TRUE(s.due(4));
}

TEST(Recovery, CheckpointRingShipsToBuddyWithoutSteadyStateAllocation) {
  fcs_test::run_ranks(4, [](mpi::Comm& c) {
    fcs::CheckpointStore store(2);
    const std::size_t bytes = 64 + static_cast<std::size_t>(c.rank()) * 8;
    std::vector<std::byte> blob(bytes,
                                static_cast<std::byte>(0x40 + c.rank()));
    store.save(c, blob, 0);
    ASSERT_TRUE(store.has_checkpoint());
    EXPECT_EQ(store.step_done(), 0);
    // Each rank guards the PRECEDING ring member's blob, byte for byte.
    const int prev = (c.rank() + 3) % 4;
    EXPECT_EQ(store.guarded_world_rank(), c.world_rank(prev));
    ASSERT_EQ(store.guarded().size(), 64 + static_cast<std::size_t>(prev) * 8);
    for (std::byte v : store.guarded())
      ASSERT_EQ(v, static_cast<std::byte>(0x40 + prev));

    // Steady state: saving the same-sized blob again reuses the retained
    // storage (allocation-free proxy). own_ keeps one buffer; the guarded
    // blob ping-pongs between the stage and commit buffers, so its pointer
    // must cycle with period two rather than move to fresh memory.
    store.save(c, blob, 2);
    const std::byte* own_before = store.own().data();
    const std::byte* guarded_even = store.guarded().data();
    store.save(c, blob, 4);
    const std::byte* guarded_odd = store.guarded().data();
    store.save(c, blob, 6);
    EXPECT_EQ(store.step_done(), 6);
    EXPECT_EQ(store.own().data(), own_before);
    EXPECT_EQ(store.guarded().data(), guarded_even);
    store.save(c, blob, 8);
    EXPECT_EQ(store.own().data(), own_before);
    EXPECT_EQ(store.guarded().data(), guarded_odd);
  });
}

// --- md-level rollback-and-replay ------------------------------------------

struct SimOutcome {
  std::uint64_t checksum = 0;
  std::uint64_t count = 0;
  double qsum = 0.0;
  int final_size = 0;
  bool recovered = false;
  double makespan = 0.0;
};

/// One 8-rank MD run (512 ions, pm solver, surrogate motion) with scheduled
/// rank crashes. checkpoint_interval exceeds the step count, so the only
/// checkpoint is the post-init one and EVERY recovery rolls back to step 0 -
/// which is what makes outcomes comparable across crash times.
SimOutcome run_md_crash(bool sparse,
                        const std::vector<sim::FaultPlan::Crash>& crashes,
                        std::shared_ptr<obs::Recorder> rec = nullptr,
                        std::shared_ptr<const sim::NetworkModel> net = nullptr) {
  SimOutcome out;
  sim::EngineConfig ecfg;
  ecfg.nranks = 8;
  if (net) ecfg.network = std::move(net);
  ecfg.fault_plan.crashes = crashes;
  ecfg.recorder = std::move(rec);
  out.makespan = sim::run_spmd(ecfg, [&](sim::RankCtx& ctx) {
    mpi::Comm world = mpi::Comm::world(ctx);
    md::SystemConfig sys;
    sys.box = domain::Box({0, 0, 0}, {16, 16, 16}, {true, true, true});
    sys.n_global = 512;
    sys.distribution = md::InitialDistribution::kProcessGrid;
    md::LocalParticles lp = md::generate_system(world, sys);

    auto make_handle = [&sys](const mpi::Comm& c) {
      auto h = std::make_unique<fcs::Fcs>(c, "pm");
      h->set_common(sys.box);
      h->set_accuracy(1e-3);
      auto& pm_solver = dynamic_cast<pm::PmSolver&>(h->solver());
      pm_solver.set_cutoff(1.5);
      pm_solver.set_mesh(16);
      return h;
    };
    std::unique_ptr<fcs::Fcs> handle = make_handle(world);

    md::SimulationConfig cfg;
    cfg.box = sys.box;
    cfg.steps = 6;
    cfg.resort = sparse;
    cfg.exploit_max_movement = sparse;
    cfg.surrogate_motion = true;
    cfg.surrogate_step = 0.05;
    cfg.modeled_compute = true;
    cfg.checkpoint_interval = 10;
    mpi::Comm final_comm;  // set by the factory when a recovery happens
    cfg.rebuild_handle = [&](const mpi::Comm& nc) {
      final_comm = nc;
      return make_handle(nc);
    };

    md::run_simulation(world, *handle, lp, cfg);

    // A crashed rank never reaches this point (its fiber is unwound), so
    // the outcome reflects the survivors' agreed state.
    const mpi::Comm& c = final_comm.valid() ? final_comm : world;
    out.recovered = final_comm.valid();
    out.final_size = c.size();
    out.checksum = particle_checksum(c, lp);
    out.count = md::global_count(c, lp);
    double q = 0.0;
    for (double v : lp.q) q += v;
    out.qsum = c.allreduce(q, mpi::OpSum{});
  });
  return out;
}

class RecoveryMd : public ::testing::TestWithParam<bool> {};
INSTANTIATE_TEST_SUITE_P(DenseSparse, RecoveryMd, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "sparse" : "dense";
                         });

TEST_P(RecoveryMd, CrashAtAnyPhaseRecoversBitIdentically) {
  const bool sparse = GetParam();
  // Crash-free reference gives the timeline to plant crashes into.
  const SimOutcome base = run_md_crash(sparse, {});
  ASSERT_FALSE(base.recovered);
  ASSERT_EQ(base.count, 512u);

  // Four crash times spread over the run interrupt four different phases
  // (post-init, mid-exchange, during force, during the late steps). All
  // roll back to the step-0 checkpoint, so all four variants must agree
  // bit-for-bit - plus a torus-network variant, since the recovered state
  // may not depend on message timing either.
  std::vector<SimOutcome> outcomes;
  auto rec = std::make_shared<obs::Recorder>();
  for (const double frac : {0.40, 0.55, 0.70, 0.85}) {
    outcomes.push_back(run_md_crash(
        sparse, {{2, frac * base.makespan}},
        frac == 0.40 ? rec : nullptr));
  }
  outcomes.push_back(run_md_crash(sparse, {{2, 0.6 * base.makespan}}, nullptr,
                                  std::make_shared<sim::TorusNetwork>(
                                      std::vector<int>{2, 2, 2})));

  for (const SimOutcome& o : outcomes) {
    EXPECT_TRUE(o.recovered);
    EXPECT_EQ(o.final_size, 7);
    EXPECT_EQ(o.count, 512u) << "particles lost or duplicated by recovery";
    EXPECT_NEAR(o.qsum, 0.0, 1e-12) << "charge not conserved";
    EXPECT_EQ(o.checksum, outcomes.front().checksum)
        << "recovered state depends on the crash phase";
  }

  // Observability of the first variant: one crash, one re-hosted shard,
  // checkpoints taken, replayed steps accounted, pool buffers migrated.
  EXPECT_EQ(counter_sum(*rec, "sim.fault.crashes"), 1.0);
  EXPECT_GE(counter_sum(*rec, "recover.crashes"), 1.0);
  EXPECT_EQ(counter_sum(*rec, "recover.rehosted"), 1.0);
  EXPECT_GE(counter_sum(*rec, "recover.ckpt.count"), 8.0);
  EXPECT_GE(counter_sum(*rec, "recover.replay_steps"), 1.0);
  EXPECT_GT(counter_sum(*rec, "pool.reclaimed"), 0.0);
}

TEST(RecoveryMdMisc, RecoveredRunIsDeterministic) {
  const SimOutcome base = run_md_crash(false, {});
  const double t = 0.55 * base.makespan;
  const SimOutcome a = run_md_crash(false, {{2, t}});
  const SimOutcome b = run_md_crash(false, {{2, t}});
  EXPECT_TRUE(a.recovered);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(RecoveryMdMisc, TwoNonAdjacentCrashesRecover) {
  const SimOutcome base = run_md_crash(false, {});
  const SimOutcome out = run_md_crash(
      false, {{2, 0.45 * base.makespan}, {5, 0.65 * base.makespan}});
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.final_size, 6);
  EXPECT_EQ(out.count, 512u);
  EXPECT_NEAR(out.qsum, 0.0, 1e-12);
}

TEST(RecoveryMdMisc, AdjacentDoubleCrashIsUnrecoverable) {
  // Ranks 2 and 3 are checkpoint buddies; both dying inside the same
  // interval loses both replicas of rank 2's blob - recovery must refuse
  // with a diagnostic rather than silently dropping the shard.
  const SimOutcome base = run_md_crash(false, {});
  const double t = 0.5 * base.makespan;
  try {
    run_md_crash(false, {{2, t}, {3, t}});
    FAIL() << "expected an unrecoverable-failure error";
  } catch (const fcs::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unrecoverable"), std::string::npos)
        << e.what();
  }
}

TEST(RecoveryMdMisc, CrashWithoutCheckpointingPropagates) {
  const SimOutcome base = run_md_crash(false, {});
  sim::EngineConfig ecfg;
  ecfg.nranks = 8;
  ecfg.fault_plan.crashes.push_back({1, 0.5 * base.makespan});
  EXPECT_THROW(
      sim::run_spmd(ecfg,
                    [](sim::RankCtx& ctx) {
                      mpi::Comm world = mpi::Comm::world(ctx);
                      md::SystemConfig sys;
                      sys.box = domain::Box({0, 0, 0}, {16, 16, 16},
                                            {true, true, true});
                      sys.n_global = 512;
                      sys.distribution = md::InitialDistribution::kProcessGrid;
                      md::LocalParticles lp = md::generate_system(world, sys);
                      fcs::Fcs handle(world, "pm");
                      handle.set_common(sys.box);
                      handle.set_accuracy(1e-3);
                      auto& pm_solver =
                          dynamic_cast<pm::PmSolver&>(handle.solver());
                      pm_solver.set_cutoff(1.5);
                      pm_solver.set_mesh(16);
                      md::SimulationConfig cfg;
                      cfg.box = sys.box;
                      cfg.steps = 6;
                      cfg.surrogate_motion = true;
                      cfg.surrogate_step = 0.05;
                      cfg.modeled_compute = true;
                      // checkpoint_interval = 0: failures are fatal.
                      md::run_simulation(world, handle, lp, cfg);
                    }),
      mpi::RankFailedError);
}

}  // namespace
