#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "spmd_test_util.hpp"

using fcs_test::run_ranks;

namespace {

// Rank counts swept by the parameterized collective tests: powers of two,
// odd counts, primes, and 1.
class Collectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32));

TEST_P(Collectives, Barrier) {
  run_ranks(GetParam(), [](mpi::Comm& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(5, c.rank() == root ? 100 + root : -1);
      c.bcast(data.data(), data.size(), root);
      for (int v : data) EXPECT_EQ(v, 100 + root);
    }
  });
}

TEST_P(Collectives, AllreduceSumMinMax) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int r = c.rank();
    EXPECT_EQ(c.allreduce(r + 1, mpi::OpSum{}), p * (p + 1) / 2);
    EXPECT_EQ(c.allreduce(r, mpi::OpMin{}), 0);
    EXPECT_EQ(c.allreduce(r, mpi::OpMax{}), p - 1);
    const double x = 0.5 * (r + 1);
    EXPECT_DOUBLE_EQ(c.allreduce(x, mpi::OpMax{}), 0.5 * p);
  });
}

TEST_P(Collectives, ReduceVectorToEveryRoot) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<long long> in = {c.rank() + 0LL, c.rank() * 2LL};
      std::vector<long long> out(2, -1);
      c.reduce(in.data(), out.data(), 2, root, mpi::OpSum{});
      if (c.rank() == root) {
        const long long s = 1LL * p * (p - 1) / 2;
        EXPECT_EQ(out[0], s);
        EXPECT_EQ(out[1], 2 * s);
      }
    }
  });
}

TEST_P(Collectives, Allgather) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    struct Pair {
      int a, b;
    };
    const Pair mine{c.rank(), c.rank() * c.rank()};
    std::vector<Pair> all(p);
    c.allgather(&mine, 1, all.data());
    for (int i = 0; i < p; ++i) {
      EXPECT_EQ(all[i].a, i);
      EXPECT_EQ(all[i].b, i * i);
    }
  });
}

TEST_P(Collectives, AllgathervVaryingSizes) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int r = c.rank();
    // Rank r contributes r elements (rank 0 contributes none).
    std::vector<int> mine(r, 1000 + r);
    std::vector<std::size_t> counts(p);
    for (int i = 0; i < p; ++i) counts[i] = static_cast<std::size_t>(i);
    std::vector<int> all(static_cast<std::size_t>(p) * (p - 1) / 2);
    c.allgatherv(mine.data(), counts, all.data());
    std::size_t pos = 0;
    for (int i = 0; i < p; ++i)
      for (int j = 0; j < i; ++j) EXPECT_EQ(all[pos++], 1000 + i);
  });
}

TEST_P(Collectives, GatherScatterRoundTrip) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int root = p - 1;
    const int mine = 7 * c.rank() + 1;
    std::vector<int> gathered(p, -1);
    c.gather(&mine, 1, gathered.data(), root);
    if (c.rank() == root) {
      for (int i = 0; i < p; ++i) EXPECT_EQ(gathered[i], 7 * i + 1);
    }
    int back = -1;
    c.scatter(gathered.data(), 1, &back, root);
    EXPECT_EQ(back, mine);
  });
}

TEST_P(Collectives, AlltoallMatchesExpectation) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int r = c.rank();
    // Block for rank i encodes (sender, receiver).
    std::vector<long long> in(p), out(p, -1);
    for (int i = 0; i < p; ++i) in[i] = 1000LL * r + i;
    c.alltoall(in.data(), 1, out.data());
    for (int i = 0; i < p; ++i) EXPECT_EQ(out[i], 1000LL * i + r);
  });
}

TEST_P(Collectives, AlltoallMultiElementBlocks) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int r = c.rank();
    std::vector<int> in(3 * p), out(3 * p, -1);
    for (int i = 0; i < p; ++i)
      for (int k = 0; k < 3; ++k) in[3 * i + k] = 100 * r + 10 * i + k;
    c.alltoall(in.data(), 3, out.data());
    for (int i = 0; i < p; ++i)
      for (int k = 0; k < 3; ++k) EXPECT_EQ(out[3 * i + k], 100 * i + 10 * r + k);
  });
}

TEST_P(Collectives, AlltoallvTriangularLoad) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int r = c.rank();
    // Rank r sends i copies of (r*100+i) to each rank i.
    std::vector<std::size_t> send_counts(p);
    std::vector<int> payload;
    for (int i = 0; i < p; ++i) {
      send_counts[i] = static_cast<std::size_t>(i);
      for (int k = 0; k < i; ++k) payload.push_back(100 * r + i);
    }
    std::vector<std::size_t> recv_counts;
    std::vector<int> got = c.alltoallv(payload.data(), send_counts, recv_counts);
    ASSERT_EQ(recv_counts.size(), static_cast<std::size_t>(p));
    std::size_t pos = 0;
    for (int i = 0; i < p; ++i) {
      EXPECT_EQ(recv_counts[i], static_cast<std::size_t>(r));
      for (std::size_t k = 0; k < recv_counts[i]; ++k)
        EXPECT_EQ(got[pos++], 100 * i + r);
    }
    EXPECT_EQ(pos, got.size());
  });
}

TEST_P(Collectives, SparseAlltoallvMatchesDense) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int r = c.rank();
    // Sparse pattern: send only to (r+1)%p and (r+3)%p.
    std::vector<std::size_t> send_counts(p, 0);
    std::vector<long long> payload;
    for (int off : {1, 3}) {
      const int dst = (r + off) % p;
      send_counts[dst] += 2;
    }
    // Build the payload in destination-rank order.
    for (int dst = 0; dst < p; ++dst)
      for (std::size_t k = 0; k < send_counts[dst]; ++k)
        payload.push_back(1000LL * r + dst);
    std::vector<std::size_t> recv_counts;
    std::vector<long long> got =
        c.sparse_alltoallv(payload.data(), send_counts, recv_counts);
    std::size_t pos = 0;
    for (int src = 0; src < p; ++src) {
      for (std::size_t k = 0; k < recv_counts[src]; ++k) {
        EXPECT_EQ(got[pos++], 1000LL * src + r);
      }
    }
    // Total received must equal total sent to me.
    std::size_t expected = 0;
    for (int src = 0; src < p; ++src)
      for (int off : {1, 3})
        if ((src + off) % p == r) expected += 2;
    EXPECT_EQ(got.size(), expected);
  });
}

TEST_P(Collectives, ScanAndExscan) {
  const int p = GetParam();
  run_ranks(p, [](mpi::Comm& c) {
    const int r = c.rank();
    EXPECT_EQ(c.scan(r + 1, mpi::OpSum{}), (r + 1) * (r + 2) / 2);
    EXPECT_EQ(c.exscan(r + 1, mpi::OpSum{}), r * (r + 1) / 2);
  });
}

TEST_P(Collectives, SplitEvenOdd) {
  const int p = GetParam();
  run_ranks(p, [p](mpi::Comm& c) {
    const int color = c.rank() % 2;
    mpi::Comm sub = c.split(color, c.rank());
    const int expected_size = (p + (color == 0 ? 1 : 0)) / 2;
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // The sub-communicator must be fully functional.
    const int sum = sub.allreduce(1, mpi::OpSum{});
    EXPECT_EQ(sum, expected_size);
  });
}

TEST(MiniMpi, PointToPointTypedRoundTrip) {
  run_ranks(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> xs = {1.5, 2.5, 3.5};
      c.send(xs.data(), xs.size(), 1, 42);
      auto echoed = c.recv_vec<double>(1, 43);
      EXPECT_EQ(echoed, xs);
    } else {
      mpi::Status st{};
      auto xs = c.recv_vec<double>(0, 42, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.count<double>(), 3u);
      c.send(xs.data(), xs.size(), 0, 43);
    }
  });
}

TEST(MiniMpi, RecvIntoTooSmallBufferThrows) {
  EXPECT_THROW(run_ranks(2,
                         [](mpi::Comm& c) {
                           if (c.rank() == 0) {
                             std::vector<int> big(10, 1);
                             c.send(big.data(), big.size(), 1, 0);
                           } else {
                             int small[2];
                             c.recv(small, 2, 0, 0);
                           }
                         }),
               fcs::Error);
}

TEST(MiniMpi, IsendIrecvWaitall) {
  run_ranks(4, [](mpi::Comm& c) {
    const int r = c.rank();
    const int p = c.size();
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    int out = 100 + r, in = -1;
    mpi::Request reqs[2];
    reqs[0] = c.irecv(&in, 1, left, 7);
    reqs[1] = c.isend(&out, 1, right, 7);
    mpi::Comm::waitall(reqs, 2);
    EXPECT_EQ(in, 100 + left);
  });
}

TEST(MiniMpi, AnySourceAnyTag) {
  run_ranks(3, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      int got = 0;
      for (int i = 0; i < 2; ++i) {
        mpi::Status st{};
        auto v = c.recv_vec<int>(mpi::kAnySource, mpi::kAnyTag, &st);
        EXPECT_EQ(v.size(), 1u);
        EXPECT_EQ(v[0], st.source * 11);
        ++got;
      }
      EXPECT_EQ(got, 2);
    } else {
      const int v = c.rank() * 11;
      c.send(&v, 1, 0, c.rank());
    }
  });
}

TEST(MiniMpi, SendrecvExchanges) {
  run_ranks(2, [](mpi::Comm& c) {
    const int partner = 1 - c.rank();
    const double mine = 2.5 + c.rank();
    double theirs = -1;
    c.sendrecv(&mine, 1, partner, 3, &theirs, 1, partner, 3);
    EXPECT_DOUBLE_EQ(theirs, 2.5 + partner);
  });
}

TEST(MiniMpi, CollectiveVirtualTimeGrowsWithMessageSize) {
  auto net = std::make_shared<sim::SwitchedNetwork>(1e-6, 1e-9);
  double small = run_ranks(8, [](mpi::Comm& c) {
    std::vector<char> buf(64);
    c.bcast(buf.data(), buf.size(), 0);
  }, net);
  double large = run_ranks(8, [](mpi::Comm& c) {
    std::vector<char> buf(1 << 20);
    c.bcast(buf.data(), buf.size(), 0);
  }, net);
  EXPECT_GT(large, small);
}

TEST(Cart, DimsCreateBalances) {
  EXPECT_EQ(mpi::dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(mpi::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(mpi::dims_create(1, 3), (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(mpi::dims_create(13, 2), (std::vector<int>{13, 1}));
  auto d = mpi::dims_create(256, 3);
  EXPECT_EQ(d[0] * d[1] * d[2], 256);
  EXPECT_LE(d[0], 8);
}

TEST(Cart, CoordsRankRoundTrip) {
  run_ranks(12, [](mpi::Comm& c) {
    mpi::CartComm cart(c, {3, 2, 2}, {true, true, false});
    std::vector<int> coords;
    for (int r = 0; r < 12; ++r) {
      cart.coords_of(r, coords);
      EXPECT_EQ(cart.rank_of(coords), r);
    }
    EXPECT_EQ(cart.rank_of(cart.coords()), c.rank());
  });
}

TEST(Cart, PeriodicWrapAndClip) {
  run_ranks(6, [](mpi::Comm& c) {
    mpi::CartComm cart(c, {3, 2}, {true, false});
    // Wrap in dim 0.
    EXPECT_EQ(cart.rank_of({-1, 0}), cart.rank_of({2, 0}));
    EXPECT_EQ(cart.rank_of({3, 1}), cart.rank_of({0, 1}));
    // Clip in dim 1.
    EXPECT_EQ(cart.rank_of({0, -1}), -1);
    EXPECT_EQ(cart.rank_of({0, 2}), -1);
  });
}

TEST(Cart, NeighborsChebyshevRadiusOne) {
  run_ranks(27, [](mpi::Comm& c) {
    mpi::CartComm cart(c, {3, 3, 3}, {true, true, true});
    auto n = cart.neighbors(1);
    // Fully periodic 3x3x3: all 26 surrounding cells are distinct ranks.
    EXPECT_EQ(n.size(), 26u);
  });
  run_ranks(8, [](mpi::Comm& c) {
    mpi::CartComm cart(c, {2, 2, 2}, {false, false, false});
    auto n = cart.neighbors(1);
    // Non-periodic 2x2x2: every other rank is adjacent.
    EXPECT_EQ(n.size(), 7u);
  });
}

TEST(Cart, SizeMismatchThrows) {
  EXPECT_THROW(run_ranks(6,
                         [](mpi::Comm& c) {
                           mpi::CartComm cart(c, {2, 2}, {true, true});
                         }),
               fcs::Error);
}

// ---------------------------------------------------------------------------
// Sub-communicator groups (create_group): the service scheduler's gang
// allocation primitive. Carving must not communicate, concurrent gangs must
// progress independently, and traffic/revocation must stay inside the group.

TEST(Groups, CreateGroupCostsNoCommunication) {
  const double makespan = run_ranks(6, [](mpi::Comm& c) {
    const std::vector<int> members =
        c.rank() < 3 ? std::vector<int>{0, 1, 2} : std::vector<int>{3, 4, 5};
    const mpi::Comm g = c.create_group(members, 7);
    EXPECT_EQ(g.size(), 3);
    EXPECT_EQ(g.rank(), c.rank() % 3);
    EXPECT_EQ(g.world_rank(g.rank()), c.rank());
    // Disjoint member lists under the same tag get distinct contexts.
    EXPECT_NE(g.context_id(), c.context_id());
  });
  // Zero communication: the virtual clock never moved.
  EXPECT_EQ(makespan, 0.0);
}

TEST(Groups, DisjointGroupsProgressIndependently) {
  run_ranks(6, [](mpi::Comm& c) {
    const bool low = c.rank() < 3;
    const std::vector<int> members =
        low ? std::vector<int>{0, 1, 2} : std::vector<int>{3, 4, 5};
    const mpi::Comm g = c.create_group(members, 1);
    // Each gang runs its own collectives; neither blocks on the other (the
    // high gang does three times as many rounds).
    const int rounds = low ? 2 : 6;
    for (int i = 0; i < rounds; ++i) {
      const int sum = g.allreduce(c.rank(), mpi::OpSum{});
      EXPECT_EQ(sum, low ? 3 : 12);
    }
  });
}

TEST(Groups, SameMembersDifferentTagsAreIsolatedChannels) {
  run_ranks(2, [](mpi::Comm& c) {
    const std::vector<int> members = {0, 1};
    const mpi::Comm a = c.create_group(members, 10);
    const mpi::Comm b = c.create_group(members, 11);
    EXPECT_NE(a.context_id(), b.context_id());
    constexpr int kTag = 5;
    if (c.rank() == 0) {
      const int va = 7;
      const int vb = 9;
      a.send(&va, 1, 1, kTag);
      b.send(&vb, 1, 1, kTag);
    } else {
      // Same source and user tag on both channels: matching must follow the
      // group context, so b's receive never steals a's message.
      sim::RankCtx& ctx = c.ctx();
      for (int i = 0; i < 64 && !a.can_recv(0, kTag); ++i) ctx.advance(1e-6);
      EXPECT_TRUE(a.can_recv(0, kTag));
      int vb = 0;
      b.recv(&vb, 1, 0, kTag);
      EXPECT_EQ(vb, 9);
      int va = 0;
      a.recv(&va, 1, 0, kTag);
      EXPECT_EQ(va, 7);
    }
  });
}

TEST(Groups, RevokeIsScopedToTheGroup) {
  run_ranks(6, [](mpi::Comm& c) {
    sim::RankCtx& ctx = c.ctx();
    const int r = c.rank();
    if (r == 1 || r == 2) {
      const mpi::Comm ga = c.create_group({1, 2}, 1);
      if (r == 1) {
        ctx.advance(1e-4);
        ga.revoke();
        ctx.acknowledge_revoke();
      } else {
        int payload = 0;
        bool woken = false;
        try {
          ga.recv(&payload, 1, 0, 9);  // rank 1 never sends: parked here
        } catch (const mpi::RankFailedError& e) {
          woken = true;
          EXPECT_EQ(e.failed_rank(), -1);  // revocation, not a dead peer
        }
        EXPECT_TRUE(woken);
        ctx.acknowledge_revoke();
      }
    } else if (r == 3 || r == 4) {
      // The sibling gang keeps collectively progressing through the whole
      // episode: the scoped revoke must never reach it.
      const mpi::Comm gb = c.create_group({3, 4}, 2);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(gb.allreduce(r, mpi::OpSum{}), 7);
        ctx.advance(1e-5);
      }
    }
    // The world communicator was never revoked: once the affected gang has
    // acknowledged, all six ranks meet in a world collective again.
    EXPECT_EQ(c.allreduce(1, mpi::OpSum{}), 6);
  });
}

}  // namespace
