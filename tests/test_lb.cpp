// The dynamic load-balancing subsystem (src/lb): weighted splitter search,
// segment/target consistency between the full and incremental migration
// paths, weighted grid cuts, the Balancer trigger state machine, and the
// end-to-end clustered-workload behaviour through the fcs layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "lb/incremental.hpp"
#include "lb/lb.hpp"
#include "lb/weighted_split.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"
#include "obs/export.hpp"
#include "redist/resort.hpp"
#include "sortlib/partition_sort.hpp"
#include "spmd_test_util.hpp"
#include "support/rng.hpp"

using fcs_test::run_ranks;

namespace {

struct Rec {
  std::uint64_t key;
  std::uint64_t payload;
};
std::uint64_t rec_key(const Rec& r) { return r.key; }

// ---------------------------------------------------------------------------
// Weighted splitter search

TEST(WeightedSplitters, EqualWeightsAreCountBalanced) {
  run_ranks(4, [](mpi::Comm& c) {
    // Rank r holds keys r*100 .. r*100+99; unit weights must split the
    // 400-key space into four segments of ~100 keys each.
    std::vector<std::uint64_t> keys(100);
    for (std::size_t i = 0; i < keys.size(); ++i)
      keys[i] = static_cast<std::uint64_t>(c.rank()) * 100 + i;
    const auto splitters = lb::weighted_splitter_keys(c, keys, 1.0, c.size());
    ASSERT_EQ(splitters.size(), 3u);
    EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));
    const auto counts = lb::segment_target_counts(c, keys, splitters);
    std::uint64_t total = 0;
    for (std::uint64_t n : counts) {
      EXPECT_NEAR(static_cast<double>(n), 100.0, 1.0);
      total += n;
    }
    EXPECT_EQ(total, 400u);
  });
}

TEST(WeightedSplitters, HeavyRankGetsFewerElements) {
  run_ranks(2, [](mpi::Comm& c) {
    // Rank 0's elements cost 3x rank 1's: the weighted cut must hand rank 0
    // roughly a third of the elements rank 1 gets.
    std::vector<std::uint64_t> keys(100);
    for (std::size_t i = 0; i < keys.size(); ++i)
      keys[i] = static_cast<std::uint64_t>(c.rank()) * 100 + i;
    const double w = c.rank() == 0 ? 3.0 : 1.0;
    const auto splitters = lb::weighted_splitter_keys(c, keys, w, c.size());
    ASSERT_EQ(splitters.size(), 1u);
    // Total weight 400, target 200 -> cut inside rank 0's range near key 66.
    const auto counts = lb::segment_target_counts(c, keys, splitters);
    EXPECT_NEAR(static_cast<double>(counts[0]) * 3.0, 200.0, 3.0);
    EXPECT_EQ(counts[0] + counts[1], 200u);
  });
}

TEST(WeightedSplitters, EmptyAndSingleRankInputs) {
  for (int p : {1, 3, 7}) {
    run_ranks(p, [p](mpi::Comm& c) {
      // Only rank 0 holds elements; the other ranks pass empty (but still
      // collective) inputs. All the weight sits in one key range.
      std::vector<std::uint64_t> keys;
      if (c.rank() == 0)
        for (std::uint64_t i = 0; i < 90; ++i) keys.push_back(i);
      const auto splitters = lb::weighted_splitter_keys(c, keys, 1.0, p);
      ASSERT_EQ(splitters.size(), static_cast<std::size_t>(p - 1));
      const auto counts = lb::segment_target_counts(c, keys, splitters);
      std::uint64_t total = 0;
      for (std::uint64_t n : counts) {
        EXPECT_NEAR(static_cast<double>(n), 90.0 / p, 1.0);
        total += n;
      }
      EXPECT_EQ(total, 90u);
    });
  }
}

TEST(WeightedSplitters, UniformItemWeightsMatchTheScalarOverload) {
  run_ranks(4, [](mpi::Comm& c) {
    fcs::Rng rng = fcs::Rng(5).stream(static_cast<std::uint64_t>(c.rank()));
    std::vector<std::uint64_t> keys(80);
    for (auto& k : keys) k = rng() % 1000;
    std::sort(keys.begin(), keys.end());
    const auto scalar = lb::weighted_splitter_keys(c, keys, 2.5, c.size());
    const std::vector<double> weights(keys.size(), 2.5);
    const auto per_item = lb::weighted_splitter_keys(c, keys, weights, c.size());
    EXPECT_EQ(scalar, per_item);
  });
}

TEST(WeightedSplitters, PerItemWeightsCutInsideAHotspot) {
  run_ranks(2, [](mpi::Comm& c) {
    // Both ranks hold 100 keys, but the top half of rank 1's range is a 9x
    // hotspot. A scalar per-rank weight could only shrink rank 1's whole
    // share; per-item weights must move the cut INTO rank 1's range, past
    // the cheap keys and into the hotspot.
    std::vector<std::uint64_t> keys(100);
    std::vector<double> weights(100);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<std::uint64_t>(c.rank()) * 100 + i;
      weights[i] = (c.rank() == 1 && i >= 50) ? 9.0 : 1.0;
    }
    const auto splitters =
        lb::weighted_splitter_keys(c, keys, weights, c.size());
    ASSERT_EQ(splitters.size(), 1u);
    // Total weight 100 + 50 + 450 = 600; the half-weight point (300) sits
    // ~17 keys into the hotspot: 100 + 50 + 17*9 = 303.
    EXPECT_GT(splitters[0], 150u);
    EXPECT_LT(splitters[0], 175u);
    // The weighted halves balance to within one element's weight.
    double below = 0.0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] < splitters[0]) below += weights[i];
    }
    const double global_below = c.allreduce(below, mpi::OpSum{});
    EXPECT_NEAR(global_below, 300.0, 9.0);
  });
}

TEST(WeightedSplitters, FullRepartitionMatchesSegmentOfKey) {
  // The invariant the incremental path relies on: feeding
  // segment_target_counts to parallel_sort_partition lands every element on
  // exactly the rank segment_of_key names - including ties at splitters.
  run_ranks(4, [](mpi::Comm& c) {
    fcs::Rng rng = fcs::Rng(77).stream(static_cast<std::uint64_t>(c.rank()));
    std::vector<Rec> items(120);
    for (std::size_t i = 0; i < items.size(); ++i)
      items[i] = {rng() % 37,  // heavy duplication forces splitter ties
                  redist::make_index(c.rank(), i)};
    sortlib::sort_by_key(items, rec_key);
    std::vector<std::uint64_t> keys(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) keys[i] = items[i].key;

    const auto splitters = lb::weighted_splitter_keys(c, keys, 1.0, c.size());
    const auto targets = lb::segment_target_counts(c, keys, splitters);
    sortlib::parallel_sort_partition(c, items, rec_key, &targets);

    EXPECT_EQ(items.size(), targets[static_cast<std::size_t>(c.rank())]);
    for (const Rec& r : items)
      EXPECT_EQ(lb::segment_of_key(splitters, r.key),
                static_cast<std::size_t>(c.rank()));
  });
}

// ---------------------------------------------------------------------------
// Incremental migration

TEST(IncrementalMigrate, MovesOnlyBoundaryElements) {
  run_ranks(4, [](mpi::Comm& c) {
    const std::uint64_t r = static_cast<std::uint64_t>(c.rank());
    // Rank r owns keys [r*100, r*100+100); 5 of them drifted into the next
    // segment (wrapping to segment 0 from the last rank).
    std::vector<Rec> items(100);
    for (std::size_t i = 0; i < items.size(); ++i)
      items[i] = {r * 100 + i, redist::make_index(c.rank(), i)};
    for (std::size_t i = 0; i < 5; ++i)
      items[i].key = ((r + 1) % 4) * 100 + i;
    sortlib::sort_by_key(items, rec_key);
    const std::vector<std::uint64_t> splitters = {100, 200, 300};

    // 20 movers of 400 elements = 5%; a 10% budget accepts the migration.
    ASSERT_TRUE(lb::incremental_migrate(c, items, rec_key, splitters, 0.10));
    EXPECT_EQ(items.size(), 100u);
    EXPECT_TRUE(sortlib::is_sorted_by_key(items, rec_key));
    for (const Rec& it : items)
      EXPECT_EQ(lb::segment_of_key(splitters, it.key),
                static_cast<std::size_t>(c.rank()));
  });
}

TEST(IncrementalMigrate, OverBudgetLeavesItemsUntouched) {
  run_ranks(4, [](mpi::Comm& c) {
    const std::uint64_t r = static_cast<std::uint64_t>(c.rank());
    std::vector<Rec> items(100);
    for (std::size_t i = 0; i < items.size(); ++i)
      items[i] = {r * 100 + i, redist::make_index(c.rank(), i)};
    for (std::size_t i = 0; i < 5; ++i)
      items[i].key = ((r + 1) % 4) * 100 + i;
    sortlib::sort_by_key(items, rec_key);
    std::vector<Rec> before = items;

    // 5% movers against a 1% budget: every rank must refuse identically and
    // leave the input byte-for-byte alone.
    ASSERT_FALSE(lb::incremental_migrate(c, items, rec_key,
                                         {100, 200, 300}, 0.01));
    ASSERT_EQ(items.size(), before.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(items[i].key, before[i].key);
      EXPECT_EQ(items[i].payload, before[i].payload);
    }
  });
}

TEST(IncrementalMigrate, AlreadyBalancedSkipsTheExchange) {
  run_ranks(3, [](mpi::Comm& c) {
    const std::uint64_t r = static_cast<std::uint64_t>(c.rank());
    std::vector<Rec> items(50);
    for (std::size_t i = 0; i < items.size(); ++i)
      items[i] = {r * 100 + i, redist::make_index(c.rank(), i)};
    ASSERT_TRUE(
        lb::incremental_migrate(c, items, rec_key, {100, 200}, 0.0));
    EXPECT_EQ(items.size(), 50u);
  });
}

TEST(IncrementalMigrate, ExtremeSkewAllElementsOnOneRank) {
  for (int p : {3, 7, 12}) {
    run_ranks(p, [p](mpi::Comm& c) {
      // Everything sits on rank 0 but belongs all over the key space; the
      // mover fraction is (p-1)/p, so only a budget of 1 accepts it.
      std::vector<Rec> items;
      if (c.rank() == 0) {
        for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(p) * 20; ++i)
          items.push_back({i, redist::make_index(0, i)});
      }
      std::vector<std::uint64_t> splitters;
      for (int s = 1; s < p; ++s)
        splitters.push_back(static_cast<std::uint64_t>(s) * 20);
      ASSERT_TRUE(lb::incremental_migrate(c, items, rec_key, splitters, 1.0));
      EXPECT_EQ(items.size(), 20u);
      for (const Rec& it : items)
        EXPECT_EQ(lb::segment_of_key(splitters, it.key),
                  static_cast<std::size_t>(c.rank()));
    });
  }
}

// ---------------------------------------------------------------------------
// Weighted grid cuts

TEST(WeightedAxisCuts, ClusteredMassShrinksTheCrowdedCells) {
  run_ranks(2, [](mpi::Comm& c) {
    const domain::Box box({0, 0, 0}, {100, 100, 100}, {true, true, true});
    // All mass in x < 25; y and z uniform.
    fcs::Rng rng = fcs::Rng(5).stream(static_cast<std::uint64_t>(c.rank()));
    std::vector<domain::Vec3> pos(2000);
    for (auto& p : pos)
      p = {rng.uniform(0.0, 25.0), rng.uniform(0.0, 100.0),
           rng.uniform(0.0, 100.0)};
    const std::array<int, 3> dims = {4, 4, 1};
    const std::array<double, 3> min_frac = {0.02, 0.02, 0.02};
    const auto cuts = lb::weighted_axis_cuts(c, box, pos, 1.0, dims, min_frac);

    ASSERT_EQ(cuts[0].size(), 3u);
    ASSERT_EQ(cuts[1].size(), 3u);
    EXPECT_TRUE(cuts[2].empty());
    for (std::size_t axis = 0; axis < 2; ++axis) {
      double prev = 0.0;
      for (double v : cuts[axis]) {
        EXPECT_GE(v, prev + min_frac[axis] - 1e-12);
        EXPECT_LT(v, 1.0);
        prev = v;
      }
    }
    // The x quartile cuts all land inside the crowded band; the uniform y
    // cuts stay near the plain quarters.
    EXPECT_LT(cuts[0][2], 0.25 + 1e-6);
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_NEAR(cuts[1][s], 0.25 * static_cast<double>(s + 1), 0.02);
  });
}

TEST(WeightedAxisCuts, InfeasibleMinimumWidthFallsBackToUniform) {
  run_ranks(1, [](mpi::Comm& c) {
    const domain::Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
    std::vector<domain::Vec3> pos = {{1, 1, 1}, {2, 2, 2}};
    // 4 cells x 0.3 minimum width > 1: the axis must degrade to uniform.
    const auto cuts = lb::weighted_axis_cuts(c, box, pos, 1.0, {4, 1, 1},
                                             {0.3, 0.3, 0.3});
    ASSERT_EQ(cuts[0].size(), 3u);
    EXPECT_DOUBLE_EQ(cuts[0][0], 0.25);
    EXPECT_DOUBLE_EQ(cuts[0][1], 0.50);
    EXPECT_DOUBLE_EQ(cuts[0][2], 0.75);
  });
}

// ---------------------------------------------------------------------------
// Balancer cost model and trigger state machine

TEST(Balancer, HysteresisEngagesAndReleases) {
  run_ranks(4, [](mpi::Comm& c) {
    lb::LbConfig cfg;
    cfg.enabled = true;
    cfg.imbalance_trigger = 1.25;
    cfg.hysteresis = 0.10;
    cfg.cooldown_epochs = 1;
    lb::Balancer bal(cfg);

    // Balanced epoch: ratio 1, no trigger.
    bal.observe(c, 100, 1.0);
    EXPECT_NEAR(bal.imbalance(), 1.0, 1e-12);
    EXPECT_FALSE(bal.should_rebalance());

    // Rank 0 twice as loaded: ratio 2/1.25 = 1.6 >= trigger -> engaged.
    bal.observe(c, 100, c.rank() == 0 ? 2.0 : 1.0);
    EXPECT_NEAR(bal.imbalance(), 1.6, 1e-9);
    EXPECT_TRUE(bal.should_rebalance());
    bal.note_rebalanced();
    EXPECT_FALSE(bal.should_rebalance());  // cooldown not yet elapsed

    // Ratio 1.209: below the trigger but above trigger - hysteresis, so the
    // balancer keeps refining.
    bal.observe(c, 100, c.rank() == 0 ? 1.3 : 1.0);
    EXPECT_GT(bal.imbalance(), 1.15);
    EXPECT_LT(bal.imbalance(), 1.25);
    EXPECT_TRUE(bal.should_rebalance());

    // Fully balanced again: below trigger - hysteresis -> released.
    bal.observe(c, 100, 1.0);
    EXPECT_FALSE(bal.should_rebalance());
  });
}

TEST(Balancer, CooldownSpacesOutPlans) {
  run_ranks(2, [](mpi::Comm& c) {
    lb::LbConfig cfg;
    cfg.enabled = true;
    cfg.imbalance_trigger = 1.1;
    cfg.hysteresis = 0.05;
    cfg.cooldown_epochs = 2;
    lb::Balancer bal(cfg);
    auto imbalanced_epoch = [&]() {
      bal.observe(c, 50, c.rank() == 0 ? 3.0 : 1.0);
    };
    imbalanced_epoch();
    ASSERT_TRUE(bal.should_rebalance());
    bal.note_rebalanced();
    imbalanced_epoch();
    EXPECT_FALSE(bal.should_rebalance());  // 1 epoch since plan < cooldown 2
    imbalanced_epoch();
    EXPECT_TRUE(bal.should_rebalance());
  });
}

TEST(Balancer, EmptyRankAdoptsTheGlobalMeanWeight) {
  run_ranks(3, [](mpi::Comm& c) {
    lb::LbConfig cfg;
    cfg.enabled = true;
    cfg.smoothing = 1.0;  // no memory: weight = last epoch's cost/particle
    lb::Balancer bal(cfg);
    // Rank 2 holds nothing; its weight must come out at the global mean
    // cost per particle (3.0 / 100), not at a degenerate zero.
    bal.observe(c, c.rank() == 2 ? 0 : 50, c.rank() == 2 ? 0.0 : 1.5);
    EXPECT_GT(bal.weight(), 0.0);
    if (c.rank() == 2) {
      EXPECT_NEAR(bal.weight(), 0.03, 1e-12);
    }
  });
}

// ---------------------------------------------------------------------------
// End to end through the fcs layer

md::SimulationResult run_clustered(mpi::Comm& c, const std::string& solver,
                                   bool lb_enabled, int steps) {
  md::SystemConfig sys;
  sys.box = domain::Box({0, 0, 0}, {64, 64, 64}, {true, true, true});
  sys.n_global = 6144;
  sys.distribution = md::InitialDistribution::kClustered;
  sys.cluster_count = 4;
  sys.cluster_sigma = 0.06;
  md::LocalParticles particles = md::generate_system(c, sys);

  fcs::Fcs handle(c, solver);
  handle.set_common(sys.box);
  handle.set_accuracy(1e-3);
  md::SimulationConfig cfg;
  cfg.box = sys.box;
  cfg.steps = steps;
  cfg.resort = true;
  cfg.exploit_max_movement = true;
  cfg.modeled_compute = true;
  cfg.surrogate_motion = true;
  cfg.surrogate_step = 0.05;  // nearly static: the hotspots persist
  cfg.lb.enabled = lb_enabled;
  cfg.lb.imbalance_trigger = 1.05;
  cfg.lb.hysteresis = 0.02;
  return md::run_simulation(c, handle, particles, cfg);
}

TEST(LbEndToEnd, ClusteredFmmImbalanceDropsBelowStatic) {
  md::SimulationResult with_lb, without_lb;
  run_ranks(12, [&](mpi::Comm& c) {
    auto r = run_clustered(c, "fmm", true, 6);
    if (c.rank() == 0) with_lb = std::move(r);
  });
  run_ranks(12, [&](mpi::Comm& c) {
    auto r = run_clustered(c, "fmm", false, 6);
    if (c.rank() == 0) without_lb = std::move(r);
  });
  ASSERT_EQ(with_lb.compute_imbalance.size(), 7u);
  // The balancer needs one observation epoch; from then on the weighted
  // cuts must beat the count-balanced static decomposition.
  const double lb_tail = *std::min_element(
      with_lb.compute_imbalance.begin() + 2, with_lb.compute_imbalance.end());
  const double static_tail = *std::min_element(
      without_lb.compute_imbalance.begin() + 2,
      without_lb.compute_imbalance.end());
  EXPECT_LT(lb_tail, static_tail);
  EXPECT_LT(with_lb.compute_imbalance.back(),
            without_lb.compute_imbalance.front());
}

TEST(LbEndToEnd, SameConfigIsByteIdentical) {
  const auto run_once = [] {
    auto rec = std::make_shared<obs::Recorder>(/*record_spans=*/true);
    sim::EngineConfig ecfg;
    ecfg.nranks = 8;
    ecfg.recorder = rec;
    const double makespan = sim::run_spmd(ecfg, [](sim::RankCtx& ctx) {
      mpi::Comm comm = mpi::Comm::world(ctx);
      (void)run_clustered(comm, "fmm", true, 4);
    });
    std::ostringstream metrics;
    obs::write_metrics_json(metrics, {{"lb-run", makespan, rec.get()}});
    return metrics.str();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Balancer, SnapshotRestoreRoundTrip) {
  // The service's warm-state unit: a restored balancer carries the evolved
  // weight, trigger state, and decomposition plan of the one snapshotted.
  run_ranks(2, [](mpi::Comm& c) {
    lb::LbConfig cfg;
    cfg.enabled = true;
    lb::Balancer bal(cfg);
    bal.observe(c, 100, c.rank() == 0 ? 2.0 : 1.0);  // engages the trigger
    bal.set_splitters({7, 42, 99});
    bal.note_rebalanced();

    const std::vector<std::byte> blob = bal.snapshot();
    lb::Balancer back(cfg);
    back.restore(blob);
    EXPECT_DOUBLE_EQ(back.weight(), bal.weight());
    EXPECT_DOUBLE_EQ(back.imbalance(), bal.imbalance());
    EXPECT_EQ(back.should_rebalance(), bal.should_rebalance());
    ASSERT_TRUE(back.has_splitters());
    EXPECT_EQ(back.splitters(), bal.splitters());
    // Restore -> snapshot is the identity on the byte stream.
    EXPECT_EQ(back.snapshot(), blob);

    std::vector<std::byte> bad = blob;
    bad.push_back(std::byte{0});
    lb::Balancer fresh(cfg);
    EXPECT_THROW(fresh.restore(bad), fcs::Error);
  });
}

}  // namespace
