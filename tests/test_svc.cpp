// The solver service (src/svc): workload signatures, the warm-state cache,
// and the scheduler's gang allocation / priority / backfill / admission
// semantics, all on the virtual-time engine.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "redist/exchange_plan.hpp"
#include "support/serialize.hpp"
#include "svc/service.hpp"
#include "svc/signature.hpp"
#include "svc/warm_cache.hpp"
#include "spmd_test_util.hpp"

using fcs_test::run_ranks;

namespace {

svc::JobSpec make_job(std::uint64_t id, double arrival, int ranks,
                      double priority = 0.0, int deadline = 0) {
  svc::JobSpec j;
  j.id = id;
  j.arrival = arrival;
  j.ranks = ranks;
  j.solver = "pm";
  j.scenario = "grid";
  j.n_particles = 256 * static_cast<std::uint64_t>(ranks);
  j.steps = 2;
  j.motion = 0.5;
  j.seed = 42 + id;
  j.priority = priority;
  j.deadline_class = deadline;
  return j;
}

/// Scheduler-side config with deterministic knobs (no env dependence).
svc::SvcConfig test_config() {
  svc::SvcConfig cfg;
  cfg.warm = true;
  cfg.backfill = true;
  cfg.aging = 0.5;
  cfg.max_queue = 1024;
  cfg.network = "switched";
  return cfg;
}

// ---------------------------------------------------------------------------
// Job wire form and workload signatures

TEST(SvcJob, SpecWireRoundTrip) {
  svc::JobSpec j = make_job(77, 1.25, 4, 2.0, 1);
  j.solver = "fmm";
  j.scenario = "clustered";
  j.steps = 9;
  j.motion = 0.125;

  fcs::ByteWriter measure;
  j.save(measure);
  std::vector<std::byte> buf(measure.size());
  fcs::ByteWriter w(buf.data(), buf.size());
  j.save(w);

  fcs::ByteReader r(buf.data(), buf.size());
  svc::JobSpec back;
  back.load(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.id, j.id);
  EXPECT_DOUBLE_EQ(back.arrival, j.arrival);
  EXPECT_EQ(back.ranks, j.ranks);
  EXPECT_EQ(back.solver, "fmm");
  EXPECT_EQ(back.scenario, "clustered");
  EXPECT_EQ(back.n_particles, j.n_particles);
  EXPECT_EQ(back.steps, 9);
  EXPECT_DOUBLE_EQ(back.motion, 0.125);
  EXPECT_EQ(back.seed, j.seed);
  EXPECT_DOUBLE_EQ(back.priority, 2.0);
  EXPECT_EQ(back.deadline_class, 1);
}

TEST(SvcSignature, KeyEncodesWorkloadDimensionsOnly) {
  svc::JobSpec j = make_job(1, 0.0, 4);
  j.solver = "fmm";
  j.scenario = "clustered";
  j.n_particles = 4 * 8192;  // per-rank 8192 -> bucket n13
  const std::string key = svc::WorkloadSignature::of(j, "switched", 2).key();
  EXPECT_EQ(key, "fmm/clustered/n13/r4/switched/f2");

  // Seed and step count are deliberately NOT part of the key: warm state
  // transfers between runs of the same workload regardless of length.
  svc::JobSpec longer = j;
  longer.seed = 999;
  longer.steps = 50;
  EXPECT_EQ(svc::WorkloadSignature::of(longer, "switched", 2).key(), key);

  // Every signature dimension separates cache entries.
  svc::JobSpec grid = j;
  grid.scenario = "grid";
  EXPECT_NE(svc::WorkloadSignature::of(grid, "switched", 2).key(), key);
  svc::JobSpec bigger = j;
  bigger.n_particles *= 2;
  EXPECT_NE(svc::WorkloadSignature::of(bigger, "switched", 2).key(), key);
  svc::JobSpec wider = j;
  wider.ranks = 8;
  EXPECT_NE(svc::WorkloadSignature::of(wider, "switched", 2).key(), key);
  EXPECT_NE(svc::WorkloadSignature::of(j, "torus", 2).key(), key);
  EXPECT_NE(svc::WorkloadSignature::of(j, "switched", 0).key(), key);

  // Same power-of-two bucket -> same key (cost magnitudes, not exact n).
  svc::JobSpec nearby = j;
  nearby.n_particles = 4 * 12000;  // per-rank 12000 is still bucket 13
  EXPECT_EQ(svc::WorkloadSignature::of(nearby, "switched", 2).key(), key);
}

// ---------------------------------------------------------------------------
// Warm-state cache serialization

TEST(SvcWarmCache, RoundTripPreservesEntries) {
  svc::WarmStateCache cache;
  svc::WarmEntry& a = cache.upsert("pm/grid/n8/r2/switched/f2");
  a.planner_blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  a.balancer_blob = {std::byte{9}, std::byte{8}};
  a.pool_classes = {4096, 16384};
  a.plan_kind = 1;
  a.plan_send_bytes = {10, 20};
  a.plan_recv_bytes = {30, 40};
  a.sessions = 5;
  svc::WarmEntry& b = cache.upsert("fmm/clustered/n13/r8/torus/f2");
  b.planner_blob = {std::byte{7}};
  b.sessions = 1;
  ASSERT_EQ(cache.size(), 2u);

  fcs::ByteWriter measure;
  cache.save(measure);
  std::vector<std::byte> buf(measure.size());
  fcs::ByteWriter w(buf.data(), buf.size());
  cache.save(w);

  svc::WarmStateCache back;
  fcs::ByteReader r(buf.data(), buf.size());
  back.load(r);
  EXPECT_TRUE(r.done());
  ASSERT_EQ(back.size(), 2u);
  const svc::WarmEntry* ra = back.find("pm/grid/n8/r2/switched/f2");
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->planner_blob, a.planner_blob);
  EXPECT_EQ(ra->balancer_blob, a.balancer_blob);
  EXPECT_EQ(ra->pool_classes, a.pool_classes);
  EXPECT_EQ(ra->plan_kind, 1);
  EXPECT_EQ(ra->plan_send_bytes, a.plan_send_bytes);
  EXPECT_EQ(ra->plan_recv_bytes, a.plan_recv_bytes);
  EXPECT_EQ(ra->sessions, 5);
  const svc::WarmEntry* rb = back.find("fmm/clustered/n13/r8/torus/f2");
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->planner_blob, b.planner_blob);
  EXPECT_TRUE(rb->balancer_blob.empty());
  EXPECT_EQ(back.find("no/such/key"), nullptr);
}

TEST(SvcWarmCache, LruCapEvictsLeastRecentlyTouched) {
  svc::WarmStateCache cache;
  EXPECT_EQ(cache.capacity(), 0u);  // unbounded unless FCS_SVC_CACHE_MAX set
  cache.set_capacity(2);
  cache.upsert("a").sessions = 1;
  cache.upsert("b").sessions = 1;
  // Touch "a" so "b" is the LRU entry when "c" pushes past the cap.
  EXPECT_NE(cache.find("a"), nullptr);
  cache.upsert("c").sessions = 1;
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);

  // Shrinking the cap evicts immediately; the finds above touched "a" then
  // "c", so "a" is now the older entry and goes first.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find("c"), nullptr);
}

TEST(SvcWarmCache, AdvanceEpochDropsStaleEntries) {
  svc::WarmStateCache cache;
  cache.upsert("old").sessions = 1;
  for (std::uint64_t i = 0; i < svc::WarmStateCache::kMaxEpochAge; ++i)
    cache.advance_epoch();
  // Within the age bound: still alive.
  ASSERT_NE(cache.find("old"), nullptr);  // touches: resets the age clock
  for (std::uint64_t i = 0; i <= svc::WarmStateCache::kMaxEpochAge; ++i)
    cache.advance_epoch();
  EXPECT_EQ(cache.find("old"), nullptr);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(SvcWarmCache, RoundTripPreservesRecencyOrder) {
  svc::WarmStateCache cache;
  cache.upsert("first").sessions = 1;
  cache.upsert("second").sessions = 1;
  (void)cache.find("first");  // "second" is now the LRU entry

  fcs::ByteWriter measure;
  cache.save(measure);
  std::vector<std::byte> buf(measure.size());
  fcs::ByteWriter w(buf.data(), buf.size());
  cache.save(w);

  svc::WarmStateCache back;
  fcs::ByteReader r(buf.data(), buf.size());
  back.load(r);
  back.set_capacity(1);
  EXPECT_EQ(back.find("second"), nullptr);
  EXPECT_NE(back.find("first"), nullptr);
}

TEST(SvcWarmCache, RebuildPlanReconstructsCountsKnownExchange) {
  run_ranks(2, [](mpi::Comm& c) {
    // Rank 0 sends {1 -> rank0, 2 -> rank1}; rank 1 sends {2 -> rank0,
    // 1 -> rank1}. Receive sides follow by symmetry.
    svc::WarmEntry e;
    e.plan_kind = static_cast<int>(redist::ExchangeKind::kSparse);
    if (c.rank() == 0) {
      e.plan_send_bytes = {1, 2};
      e.plan_recv_bytes = {1, 2};
    } else {
      e.plan_send_bytes = {2, 1};
      e.plan_recv_bytes = {2, 1};
    }
    redist::ExchangePlan plan;
    ASSERT_TRUE(svc::rebuild_plan(e, c, &plan));
    EXPECT_EQ(plan.kind(), redist::ExchangeKind::kSparse);
    EXPECT_TRUE(plan.counts_known());
    EXPECT_EQ(plan.n_items(), 3u);
    EXPECT_EQ(plan.n_recv_total(), 3u);
    ASSERT_EQ(plan.send_counts().size(), 2u);
    EXPECT_EQ(plan.send_counts()[0], e.plan_send_bytes[0]);
    EXPECT_EQ(plan.send_counts()[1], e.plan_send_bytes[1]);

    // The rebuilt plan is a WORKING counts-known plan: apply a payload
    // through it and check the destination-major identity routing.
    std::vector<double> data = {10.0 + c.rank(), 20.0 + c.rank(),
                                30.0 + c.rank()};
    const std::vector<double> got = plan.apply(c, data.data());
    // Receive layout is grouped by source rank: rank 0 gets its own
    // first item, then rank 1's first two items; rank 1 gets rank 0's
    // last two, then rank 1's last one.
    const std::vector<double> want =
        c.rank() == 0 ? std::vector<double>{10.0, 11.0, 21.0}
                      : std::vector<double>{20.0, 30.0, 31.0};
    EXPECT_EQ(got, want);
  });
}

TEST(SvcWarmCache, RebuildPlanRejectsMissingOrMismatchedSkeleton) {
  run_ranks(2, [](mpi::Comm& c) {
    redist::ExchangePlan plan;
    svc::WarmEntry none;  // never captured a plan
    EXPECT_FALSE(svc::rebuild_plan(none, c, &plan));
    svc::WarmEntry wrong_size;
    wrong_size.plan_kind = 0;
    wrong_size.plan_send_bytes = {1, 2, 3};  // recorded on a 3-rank gang
    wrong_size.plan_recv_bytes = {1, 2, 3};
    EXPECT_FALSE(svc::rebuild_plan(wrong_size, c, &plan));
    svc::WarmEntry no_recv;
    no_recv.plan_kind = 0;
    no_recv.plan_send_bytes = {1, 1};  // receive side never captured
    EXPECT_FALSE(svc::rebuild_plan(no_recv, c, &plan));
  });
}

TEST(SvcWarmCache, LoadRejectsTruncatedStream) {
  svc::WarmStateCache cache;
  cache.upsert("pm/grid/n8/r2/switched/f2").sessions = 1;
  fcs::ByteWriter measure;
  cache.save(measure);
  std::vector<std::byte> buf(measure.size());
  fcs::ByteWriter w(buf.data(), buf.size());
  cache.save(w);

  svc::WarmStateCache back;
  fcs::ByteReader r(buf.data(), buf.size() / 2);
  EXPECT_THROW(back.load(r), fcs::Error);
}

// ---------------------------------------------------------------------------
// Service runs (SPMD)

TEST(SvcService, RunsEveryAdmittedJobAndReportsInOrder) {
  svc::ServiceReport report;
  run_ranks(4, [&report](mpi::Comm& c) {
    std::vector<svc::JobSpec> trace;
    trace.push_back(make_job(3, 0.0, 2));
    trace.push_back(make_job(1, 0.001, 1));
    trace.push_back(make_job(2, 0.002, 3));
    trace.push_back(make_job(5, 0.003, 1));
    trace.push_back(make_job(4, 0.004, 2));
    svc::WarmStateCache cache;
    const svc::ServiceReport rep =
        svc::Service::run(c, c.rank() == 0 ? trace : std::vector<svc::JobSpec>{},
                          test_config(), &cache);
    if (c.rank() == 0) {
      report = rep;
    } else {
      // Workers return an empty report; only the scheduler aggregates.
      EXPECT_TRUE(rep.jobs.empty());
    }
  });
  ASSERT_EQ(report.jobs.size(), 5u);
  EXPECT_EQ(report.admitted, 5u);
  EXPECT_EQ(report.rejected, 0u);
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const svc::JobResult& jr = report.jobs[i];
    EXPECT_EQ(jr.id, i + 1);  // sorted by id
    EXPECT_GE(jr.start, jr.arrival);
    EXPECT_GT(jr.end, jr.start);
    EXPECT_GT(jr.latency(), 0.0);
  }
  EXPECT_GT(report.makespan, 0.0);
}

TEST(SvcService, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    svc::ServiceReport report;
    run_ranks(4, [&report](mpi::Comm& c) {
      std::vector<svc::JobSpec> trace;
      for (int i = 0; i < 6; ++i)
        trace.push_back(make_job(static_cast<std::uint64_t>(i + 1),
                                 0.0005 * i, 1 + i % 3, i % 2, i % 4 == 0));
      svc::WarmStateCache cache;
      const svc::ServiceReport rep = svc::Service::run(
          c, c.rank() == 0 ? trace : std::vector<svc::JobSpec>{},
          test_config(), &cache);
      if (c.rank() == 0) report = rep;
    });
    return report;
  };
  const svc::ServiceReport a = run_once();
  const svc::ServiceReport b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise: virtual time is exact
  EXPECT_EQ(a.warm_hits, b.warm_hits);
  EXPECT_EQ(a.backfills, b.backfills);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start);
    EXPECT_EQ(a.jobs[i].end, b.jobs[i].end);
    EXPECT_EQ(a.jobs[i].warm, b.jobs[i].warm);
  }
}

TEST(SvcService, SecondRunStartsWarmFromSurvivingCache) {
  std::vector<svc::ServiceReport> reports;
  run_ranks(3, [&reports](mpi::Comm& c) {
    const std::vector<svc::JobSpec> trace = {make_job(1, 0.0, 2)};
    const std::vector<svc::JobSpec> mine =
        c.rank() == 0 ? trace : std::vector<svc::JobSpec>{};
    svc::SvcConfig cfg = test_config();
    svc::WarmStateCache cache;
    // The cache outlives Service::run, so the second incarnation of the
    // service finds the first one's planner/balancer snapshots.
    const svc::ServiceReport cold = svc::Service::run(c, mine, cfg, &cache);
    const svc::ServiceReport warm = svc::Service::run(c, mine, cfg, &cache);
    // cfg.warm = false must ignore the populated cache entirely.
    cfg.warm = false;
    const svc::ServiceReport off = svc::Service::run(c, mine, cfg, &cache);
    if (c.rank() == 0) reports = {cold, warm, off};
  });
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].warm_hits, 0u);  // first sight of the signature
  EXPECT_EQ(reports[1].warm_hits, 1u);
  ASSERT_EQ(reports[1].jobs.size(), 1u);
  EXPECT_TRUE(reports[1].jobs[0].warm);
  EXPECT_EQ(reports[2].warm_hits, 0u);
}

TEST(SvcService, NullCacheDisablesWarmState) {
  svc::ServiceReport report;
  run_ranks(3, [&report](mpi::Comm& c) {
    std::vector<svc::JobSpec> trace = {make_job(1, 0.0, 2),
                                       make_job(2, 0.0001, 2)};
    const svc::ServiceReport rep = svc::Service::run(
        c, c.rank() == 0 ? trace : std::vector<svc::JobSpec>{}, test_config(),
        nullptr);
    if (c.rank() == 0) report = rep;
  });
  EXPECT_EQ(report.warm_hits, 0u);
  ASSERT_EQ(report.jobs.size(), 2u);
}

TEST(SvcService, InteractiveBoostOvertakesEarlierBatchJob) {
  svc::ServiceReport report;
  run_ranks(3, [&report](mpi::Comm& c) {
    std::vector<svc::JobSpec> trace;
    trace.push_back(make_job(1, 0.0, 2));             // occupies the pool
    trace.push_back(make_job(2, 0.0001, 2, 0.0, 0));  // batch, arrives first
    trace.push_back(make_job(3, 0.0002, 2, 0.0, 1));  // interactive
    svc::WarmStateCache cache;
    const svc::ServiceReport rep = svc::Service::run(
        c, c.rank() == 0 ? trace : std::vector<svc::JobSpec>{}, test_config(),
        &cache);
    if (c.rank() == 0) report = rep;
  });
  ASSERT_EQ(report.jobs.size(), 3u);
  // Both queue behind job 1; the interactive boost dispatches job 3 first
  // (the batch job's tiny aging head start cannot compete).
  EXPECT_LT(report.jobs[2].start, report.jobs[1].start);
}

TEST(SvcService, BackfillFillsFreeRanksPastBlockedHead) {
  auto run_once = [](bool backfill) {
    svc::ServiceReport report;
    run_ranks(4, [&report, backfill](mpi::Comm& c) {
      std::vector<svc::JobSpec> trace;
      trace.push_back(make_job(1, 0.0, 2));            // leaves 1 rank free
      trace.push_back(make_job(2, 0.0001, 3, 10.0));   // blocked head of line
      trace.push_back(make_job(3, 0.0002, 1, 0.0));    // fits the free rank
      svc::SvcConfig cfg = test_config();
      cfg.backfill = backfill;
      svc::WarmStateCache cache;
      const svc::ServiceReport rep = svc::Service::run(
          c, c.rank() == 0 ? trace : std::vector<svc::JobSpec>{}, cfg, &cache);
      if (c.rank() == 0) report = rep;
    });
    return report;
  };
  const svc::ServiceReport with = run_once(true);
  ASSERT_EQ(with.jobs.size(), 3u);
  EXPECT_GE(with.backfills, 1u);
  EXPECT_LT(with.jobs[2].start, with.jobs[1].start);  // 3 overtook blocked 2

  const svc::ServiceReport without = run_once(false);
  ASSERT_EQ(without.jobs.size(), 3u);
  EXPECT_EQ(without.backfills, 0u);
  EXPECT_LT(without.jobs[1].start, without.jobs[2].start);  // strict priority
}

TEST(SvcService, AdmissionRejectsOversizedJobsAndQueueOverflow) {
  svc::ServiceReport report;
  run_ranks(3, [&report](mpi::Comm& c) {
    std::vector<svc::JobSpec> trace;
    trace.push_back(make_job(1, 0.0, 5));  // larger than the 2-rank pool
    for (int i = 0; i < 5; ++i)
      trace.push_back(make_job(static_cast<std::uint64_t>(i + 2), 0.0, 1));
    svc::SvcConfig cfg = test_config();
    cfg.max_queue = 2;
    svc::WarmStateCache cache;
    const svc::ServiceReport rep = svc::Service::run(
        c, c.rank() == 0 ? trace : std::vector<svc::JobSpec>{}, cfg, &cache);
    if (c.rank() == 0) report = rep;
  });
  EXPECT_EQ(report.admitted + report.rejected, 6u);
  EXPECT_GE(report.rejected, 1u);  // at least the oversized job
  EXPECT_EQ(report.jobs.size(), static_cast<std::size_t>(report.admitted));
}

}  // namespace
