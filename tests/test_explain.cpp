#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "explain.hpp"
#include "support/error.hpp"

namespace {

// --- JSON parser. -----------------------------------------------------------

TEST(ExplainJson, ParsesScalarsContainersAndEscapes) {
  const tools::Json doc = tools::parse_json(
      R"({"n":-1.5e2,"s":"a\"bA","t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  ASSERT_EQ(doc.kind, tools::Json::Kind::kObject);
  EXPECT_DOUBLE_EQ(doc.number_or("n", 0.0), -150.0);
  ASSERT_NE(doc.find("s"), nullptr);
  EXPECT_EQ(doc.find("s")->string, "a\"bA");
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_FALSE(doc.find("f")->boolean);
  EXPECT_EQ(doc.find("z")->kind, tools::Json::Kind::kNull);
  ASSERT_EQ(doc.find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("arr")->array[1].number, 2.0);
  EXPECT_EQ(doc.find("obj")->find("k")->string, "v");
  // Missing keys are nulls / fallbacks, never crashes.
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 7.0), 7.0);
}

TEST(ExplainJson, PreservesObjectMemberOrder) {
  const tools::Json doc = tools::parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "z");
  EXPECT_EQ(doc.object[1].first, "a");
  EXPECT_EQ(doc.object[2].first, "m");
}

TEST(ExplainJson, RejectsMalformedDocuments) {
  EXPECT_THROW(tools::parse_json(""), fcs::Error);
  EXPECT_THROW(tools::parse_json("{"), fcs::Error);
  EXPECT_THROW(tools::parse_json(R"({"a":1,})"), fcs::Error);
  EXPECT_THROW(tools::parse_json("[1 2]"), fcs::Error);
  EXPECT_THROW(tools::parse_json("{} trailing"), fcs::Error);
  EXPECT_THROW(tools::parse_json(R"({"a":inf})"), fcs::Error);
  EXPECT_THROW(tools::parse_json(R"("unterminated)"), fcs::Error);
  EXPECT_THROW(tools::parse_json(R"("bad \q escape")"), fcs::Error);
}

// --- Metrics model. ---------------------------------------------------------

/// A minimal but shape-complete metrics document with two labelled runs.
/// makespans: fast 1.0s, slow 1.2s; the extra 0.2s sits in redist.exchange.
std::string sample_metrics() {
  return R"({
  "runs": [
    {
      "label": "0:fast",
      "nranks": 4,
      "makespan": 1.0,
      "counters": {
        "mpi.alltoallv.bytes": {"total": {"sum": 1000.0, "min": 200.0,
                                          "max": 300.0}},
        "pool.bytes_hwm": {"total": {"sum": 4096.0}}
      },
      "critpath": {
        "step_span": "md.step",
        "steps": [
          {"step": 0, "makespan": 0.5, "path": 0.5, "coverage": 1.0,
           "comm": 0.1, "critical_rank": 2,
           "slack": {"mean": 0.01, "max": 0.02},
           "phases": {"md.step": 0.5, "fmm.compute": 0.4},
           "links": [{"src": 0, "dst": 2, "seconds": 0.1, "msgs": 3}]}
        ],
        "total": {"makespan": 1.0, "path": 1.0, "coverage": 1.0,
                  "comm": 0.2, "critical_rank": 2,
                  "slack": {"mean": 0.02, "max": 0.04},
                  "phases": {"md.step": 1.0, "fmm.compute": 0.8,
                             "redist.exchange.initial": 0.1},
                  "links": [{"src": 0, "dst": 2, "seconds": 0.2, "msgs": 6}]}
      }
    },
    {
      "label": "1:slow",
      "nranks": 4,
      "makespan": 1.2,
      "counters": {
        "mpi.alltoallv.bytes": {"total": {"sum": 5000.0}},
        "pool.bytes_hwm": {"total": {"sum": 8192.0}}
      },
      "critpath": {
        "step_span": "md.step",
        "steps": [],
        "total": {"makespan": 1.2, "path": 1.15, "coverage": 0.958,
                  "comm": 0.3, "critical_rank": 1,
                  "slack": {"mean": 0.05, "max": 0.09},
                  "phases": {"md.step": 1.15, "fmm.compute": 0.8,
                             "redist.exchange.initial": 0.3},
                  "links": []}
      }
    }
  ]
})";
}

TEST(ExplainMetrics, ParsesRunsCountersAndCritpath) {
  const std::vector<tools::RunInfo> runs =
      tools::parse_metrics(sample_metrics());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].label, "0:fast");
  EXPECT_EQ(runs[0].nranks, 4);
  EXPECT_DOUBLE_EQ(runs[0].makespan, 1.0);
  EXPECT_DOUBLE_EQ(runs[0].counter_sum.at("mpi.alltoallv.bytes"), 1000.0);
  EXPECT_DOUBLE_EQ(runs[0].counter_sum.at("pool.bytes_hwm"), 4096.0);
  ASSERT_TRUE(runs[0].has_critpath);
  EXPECT_EQ(runs[0].step_span, "md.step");
  ASSERT_EQ(runs[0].steps.size(), 1u);
  EXPECT_EQ(runs[0].steps[0].step, 0);
  EXPECT_EQ(runs[0].steps[0].critical_rank, 2);
  EXPECT_DOUBLE_EQ(runs[0].steps[0].phases.at("fmm.compute"), 0.4);
  ASSERT_EQ(runs[0].steps[0].links.size(), 1u);
  EXPECT_EQ(runs[0].steps[0].links[0].dst, 2);
  EXPECT_EQ(runs[0].steps[0].links[0].msgs, 3u);
  EXPECT_DOUBLE_EQ(runs[0].total.path, 1.0);
  EXPECT_DOUBLE_EQ(runs[1].total.coverage, 0.958);
  EXPECT_TRUE(runs[1].steps.empty());
}

TEST(ExplainMetrics, RunsWithoutCritpathParse) {
  const auto runs = tools::parse_metrics(
      R"({"runs":[{"label":"bare","nranks":2,"makespan":0.5,"counters":{}}]})");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].has_critpath);
  EXPECT_DOUBLE_EQ(runs[0].makespan, 0.5);
}

TEST(ExplainMetrics, RejectsDocumentsWithoutRuns) {
  EXPECT_THROW(tools::parse_metrics(R"({"no_runs":[]})"), fcs::Error);
}

// --- Diff analysis. ---------------------------------------------------------

TEST(ExplainDiff, PairsByLabelAndRanksDeltas) {
  const auto a = tools::parse_metrics(sample_metrics());
  auto b = tools::parse_metrics(sample_metrics());
  // B's "0:fast" regressed by 50% with the growth in redist.exchange.initial.
  b[0].makespan = 1.5;
  b[0].total.phases["redist.exchange.initial"] = 0.6;
  b[0].counter_sum["mpi.alltoallv.bytes"] = 9000.0;

  tools::ExplainOptions opts;
  opts.threshold_pct = 5.0;
  const tools::DiffResult diff = tools::diff_runs(a, b, opts);
  ASSERT_EQ(diff.runs.size(), 2u);
  EXPECT_TRUE(diff.unmatched.empty());

  const tools::RunDiff& d0 = diff.runs[0];
  EXPECT_EQ(d0.label_a, "0:fast");
  EXPECT_DOUBLE_EQ(d0.delta(), 0.5);
  EXPECT_DOUBLE_EQ(d0.pct(), 50.0);
  EXPECT_TRUE(d0.regressed);
  // Largest phase movement first: the redist exchange grew by 0.5s.
  ASSERT_FALSE(d0.phases.empty());
  EXPECT_EQ(d0.phases[0].name, "redist.exchange.initial");
  EXPECT_DOUBLE_EQ(d0.phases[0].delta(), 0.5);
  ASSERT_FALSE(d0.counters.empty());
  EXPECT_EQ(d0.counters[0].name, "mpi.alltoallv.bytes");

  // The untouched pair is not a regression.
  EXPECT_FALSE(diff.runs[1].regressed);
  EXPECT_EQ(diff.regressions, 1);
}

TEST(ExplainDiff, ThresholdGatesSmallDeltas) {
  const auto a = tools::parse_metrics(sample_metrics());
  auto b = tools::parse_metrics(sample_metrics());
  b[0].makespan = 1.03;  // +3%

  tools::ExplainOptions loose;
  loose.threshold_pct = 5.0;
  EXPECT_EQ(tools::diff_runs(a, b, loose).regressions, 0);

  tools::ExplainOptions tight;
  tight.threshold_pct = 1.0;
  EXPECT_EQ(tools::diff_runs(a, b, tight).regressions, 1);

  // Improvements never count as regressions.
  b[0].makespan = 0.5;
  tools::ExplainOptions zero;
  EXPECT_EQ(tools::diff_runs(a, b, zero).regressions, 0);
}

TEST(ExplainDiff, ExplicitPairsAndUnmatchedLabels) {
  const auto runs = tools::parse_metrics(sample_metrics());

  tools::ExplainOptions opts;
  opts.pairs.push_back({"0:fast", "1:slow"});
  const tools::DiffResult diff = tools::diff_runs(runs, runs, opts);
  ASSERT_EQ(diff.runs.size(), 1u);
  EXPECT_EQ(diff.runs[0].label_a, "0:fast");
  EXPECT_EQ(diff.runs[0].label_b, "1:slow");
  EXPECT_NEAR(diff.runs[0].pct(), 20.0, 1e-9);

  // Label matching flags partnerless runs instead of silently dropping them.
  const auto only_fast = tools::parse_metrics(
      R"({"runs":[{"label":"0:fast","nranks":4,"makespan":1.0,)"
      R"("counters":{}}]})");
  tools::ExplainOptions by_label;
  const tools::DiffResult partial =
      tools::diff_runs(runs, only_fast, by_label);
  EXPECT_EQ(partial.runs.size(), 1u);
  ASSERT_EQ(partial.unmatched.size(), 1u);
  EXPECT_EQ(partial.unmatched[0], "1:slow (A)");
}

TEST(ExplainDiff, ByIndexPairsPositionally) {
  const auto a = tools::parse_metrics(sample_metrics());
  auto b = tools::parse_metrics(sample_metrics());
  b[0].label = "renamed";
  b[1].label = "also-renamed";
  tools::ExplainOptions opts;
  opts.by_index = true;
  const tools::DiffResult diff = tools::diff_runs(a, b, opts);
  ASSERT_EQ(diff.runs.size(), 2u);
  EXPECT_EQ(diff.runs[0].label_b, "renamed");
  EXPECT_TRUE(diff.unmatched.empty());
}

// --- CLI driver. ------------------------------------------------------------

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream os(path);
  os << body;
  return path;
}

int run_cli(std::vector<const char*> argv, std::string* out = nullptr,
            std::string* err = nullptr) {
  argv.insert(argv.begin(), "obs_explain");
  std::ostringstream o, e;
  const int rc = tools::explain_main(static_cast<int>(argv.size()),
                                     argv.data(), o, e);
  if (out != nullptr) *out = o.str();
  if (err != nullptr) *err = e.str();
  return rc;
}

TEST(ExplainCli, BreakdownReportsPathAndCoverage) {
  const std::string path = write_temp("explain_a.json", sample_metrics());
  std::string out;
  EXPECT_EQ(run_cli({path.c_str()}, &out), 0);
  EXPECT_NE(out.find("0:fast"), std::string::npos);
  EXPECT_NE(out.find("fmm.compute"), std::string::npos);
  EXPECT_NE(out.find("coverage"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExplainCli, MinCoverageGateTripsExitCode) {
  const std::string path = write_temp("explain_cov.json", sample_metrics());
  // Run "1:slow" has coverage 0.958: passes at 0.95, fails at 0.99.
  EXPECT_EQ(run_cli({"--min-coverage", "0.95", path.c_str()}), 0);
  std::string out;
  EXPECT_EQ(run_cli({"--min-coverage", "0.99", path.c_str()}, &out), 1);
  std::remove(path.c_str());
}

TEST(ExplainCli, DiffOfIdenticalFilesIsClean) {
  const std::string a = write_temp("explain_ida.json", sample_metrics());
  const std::string b = write_temp("explain_idb.json", sample_metrics());
  std::string out;
  EXPECT_EQ(run_cli({"--diff", a.c_str(), b.c_str()}, &out), 0);
  EXPECT_NE(out.find("0 regression"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ExplainCli, DiffFlagsRegressionAboveThreshold) {
  const std::string a = write_temp("explain_ra.json", sample_metrics());
  auto slow = sample_metrics();
  const std::string needle = "\"makespan\": 1.0";
  const auto pos = slow.find(needle);
  ASSERT_NE(pos, std::string::npos);
  slow.replace(pos, needle.size(), "\"makespan\": 2.0");
  const std::string b = write_temp("explain_rb.json", slow);
  std::string out;
  EXPECT_EQ(run_cli({"--diff", "--threshold", "10", a.c_str(), b.c_str()},
                    &out),
            1);
  EXPECT_NE(out.find("1 regression"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ExplainCli, SingleFilePairComparesWithinOneFile) {
  const std::string path = write_temp("explain_pair.json", sample_metrics());
  std::string out;
  EXPECT_EQ(run_cli({"--diff", "--pair", "0:fast=1:slow", "--threshold", "50",
                     path.c_str()},
                    &out),
            0);
  EXPECT_NE(out.find("0:fast"), std::string::npos);
  EXPECT_NE(out.find("1:slow"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExplainCli, UsageAndIoErrorsExitTwo) {
  std::string err;
  EXPECT_EQ(run_cli({}, nullptr, &err), 2);  // no files
  EXPECT_EQ(run_cli({"--bogus-flag", "x.json"}, nullptr, &err), 2);
  EXPECT_EQ(run_cli({"/nonexistent/metrics.json"}, nullptr, &err), 2);
  EXPECT_EQ(run_cli({"--pair", "missing-equals", "a", "b"}, nullptr, &err), 2);
  const std::string bad = write_temp("explain_bad.json", "{not json");
  EXPECT_EQ(run_cli({bad.c_str()}, nullptr, &err), 2);
  std::remove(bad.c_str());

  std::string out;
  EXPECT_EQ(run_cli({"--help"}, &out), 0);
  EXPECT_NE(out.find("usage"), std::string::npos);
}

}  // namespace
