#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    FCS_CHECK(1 == 2, "expected " << 1 << " to equal " << 2);
    FAIL() << "FCS_CHECK did not throw";
  } catch (const fcs::Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected 1 to equal 2"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertThrows) { EXPECT_THROW(FCS_ASSERT(false), fcs::Error); }

TEST(Error, PassingChecksAreSilent) {
  EXPECT_NO_THROW(FCS_CHECK(true, "unused"));
  EXPECT_NO_THROW(FCS_ASSERT(1 + 1 == 2));
}

TEST(Rng, DeterministicForSameSeed) {
  fcs::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  fcs::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  fcs::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  fcs::Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, NormalHasReasonableMoments) {
  fcs::Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, StreamsAreIndependentAndDeterministic) {
  fcs::Rng base(123);
  fcs::Rng s0 = base.stream(0);
  fcs::Rng s1 = base.stream(1);
  fcs::Rng s0_again = fcs::Rng(123).stream(0);
  EXPECT_NE(s0(), s1());
  fcs::Rng s0_ref = fcs::Rng(123).stream(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s0_again(), s0_ref());
}

TEST(Table, AlignsColumns) {
  fcs::Table t({"step", "runtime"});
  t.begin_row().col(1LL).col(0.5);
  t.begin_row().col(100LL).col(12.25);
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("step"), std::string::npos);
  EXPECT_NE(out.find("12.25"), std::string::npos);
  // Three lines: header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Table, ColWithoutRowThrows) {
  fcs::Table t({"a"});
  EXPECT_THROW(t.col("x"), fcs::Error);
}

}  // namespace
