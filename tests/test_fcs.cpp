#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fcs/fcs.hpp"
#include "minimpi/cart.hpp"
#include "obs/obs.hpp"
#include "pm/pm_solver.hpp"
#include "sim/network.hpp"
#include "pm/ewald.hpp"
#include "spmd_test_util.hpp"
#include "support/rng.hpp"

using domain::Box;
using domain::Vec3;
using fcs_test::run_ranks;

namespace {

struct TestSystem {
  Box box{{0, 0, 0}, {8, 8, 8}, {true, true, true}};
  std::vector<Vec3> pos;
  std::vector<double> q;
};

TestSystem make_system(std::size_t side, std::uint64_t seed = 55) {
  TestSystem s;
  fcs::Rng rng(seed);
  for (std::size_t x = 0; x < side; ++x)
    for (std::size_t y = 0; y < side; ++y)
      for (std::size_t z = 0; z < side; ++z) {
        Vec3 p{(x + 0.5) * 8.0 / side, (y + 0.5) * 8.0 / side,
               (z + 0.5) * 8.0 / side};
        p.x += rng.uniform(-0.2, 0.2);
        p.y += rng.uniform(-0.2, 0.2);
        p.z += rng.uniform(-0.2, 0.2);
        s.pos.push_back(s.box.wrap(p));
        s.q.push_back(((x + y + z) % 2 == 0) ? 1.0 : -1.0);
      }
  return s;
}

void deal(const TestSystem& s, const mpi::Comm& c, std::vector<Vec3>& pos,
          std::vector<double>& q) {
  pos.clear();
  q.clear();
  for (std::size_t i = 0; i < s.pos.size(); ++i) {
    if (static_cast<int>(i % c.size()) != c.rank()) continue;
    pos.push_back(s.pos[i]);
    q.push_back(s.q[i]);
  }
}

TEST(FcsHandle, UnknownSolverThrows) {
  run_ranks(1, [](mpi::Comm& c) {
    EXPECT_THROW(fcs::Fcs handle(c, "nosuchsolver"), fcs::Error);
  });
}

class FcsMethods : public ::testing::TestWithParam<std::tuple<int, const char*>> {};
INSTANTIATE_TEST_SUITE_P(
    RanksAndSolvers, FcsMethods,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values("pm", "direct")));

TEST_P(FcsMethods, MethodAKeepsOrderAndMatchesDirect) {
  const auto [p, solver_name] = GetParam();
  const TestSystem sys = make_system(5);
  run_ranks(p, [&, solver = std::string(solver_name)](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    deal(sys, c, pos, q);
    const auto pos_before = pos;

    fcs::Fcs handle(c, solver);
    handle.set_common(sys.box);
    handle.set_accuracy(1e-3);
    handle.tune(pos, q);
    std::vector<double> phi;
    std::vector<Vec3> field;
    fcs::RunResult rr = handle.run(pos, q, phi, field);  // method A

    EXPECT_FALSE(rr.resorted);
    EXPECT_FALSE(handle.last_run_resorted());
    EXPECT_EQ(rr.n_local, pos_before.size());
    // Arrays untouched by method A.
    ASSERT_EQ(pos.size(), pos_before.size());
    for (std::size_t i = 0; i < pos.size(); ++i)
      EXPECT_EQ(pos[i], pos_before[i]);
    ASSERT_EQ(phi.size(), pos.size());
    ASSERT_EQ(field.size(), pos.size());
    // Results correspond to the original order: verify against a serial
    // reference on rank layouts.
    std::vector<double> ref_phi;
    std::vector<Vec3> ref_field;
    pm::ewald_reference(sys.box, sys.pos, sys.q,
                        pm::tune_ewald(sys.box, 2.4, 1e-8), ref_phi, ref_field);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      const std::size_t gi = i * p + static_cast<std::size_t>(c.rank());
      EXPECT_NEAR(phi[i], ref_phi[gi], 0.05);
    }
  });
}

TEST_P(FcsMethods, MethodBReturnsChangedOrderAndResortFollows) {
  const auto [p, solver_name] = GetParam();
  const TestSystem sys = make_system(5);
  run_ranks(p, [&, solver = std::string(solver_name)](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    deal(sys, c, pos, q);
    const std::size_t n_before = pos.size();

    // Tag each original particle so resorted data can be cross-checked:
    // extra[i] encodes the particle's position hash.
    auto tag_of = [](const Vec3& v) {
      return std::floor(v.x * 1e5) + std::floor(v.y * 1e3) + v.z;
    };
    std::vector<double> extra(n_before);
    for (std::size_t i = 0; i < n_before; ++i) extra[i] = tag_of(pos[i]);

    fcs::Fcs handle(c, solver);
    handle.set_common(sys.box);
    handle.set_accuracy(1e-3);
    handle.tune(pos, q);
    std::vector<double> phi;
    std::vector<Vec3> field;
    fcs::RunOptions opts;
    opts.resort = true;
    fcs::RunResult rr = handle.run(pos, q, phi, field, opts);

    EXPECT_TRUE(rr.resorted);
    EXPECT_TRUE(handle.last_run_resorted());
    EXPECT_EQ(pos.size(), handle.resort_particle_count());
    ASSERT_EQ(phi.size(), pos.size());

    // The global particle multiset is preserved.
    const auto total = c.allreduce(static_cast<std::uint64_t>(pos.size()),
                                   mpi::OpSum{});
    EXPECT_EQ(total, static_cast<std::uint64_t>(sys.pos.size()));

    // Additional data follows its particle.
    handle.resort_floats(extra, 1);
    ASSERT_EQ(extra.size(), pos.size());
    for (std::size_t i = 0; i < pos.size(); ++i)
      EXPECT_NEAR(extra[i], tag_of(pos[i]), 1e-9);

    // Integer payloads too.
    std::vector<std::int64_t> itags(n_before);
    // (resort indices are still valid for the ORIGINAL layout)
    for (std::size_t i = 0; i < n_before; ++i)
      itags[i] = 1000 * c.rank() + static_cast<std::int64_t>(i);
    handle.resort_ints(itags, 1);
    EXPECT_EQ(itags.size(), pos.size());
  });
}

TEST(FcsMethods, CapacityFallbackRestores) {
  const TestSystem sys = make_system(5);
  run_ranks(4, [&](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    deal(sys, c, pos, q);
    const auto pos_before = pos;

    fcs::Fcs handle(c, "pm");
    handle.set_common(sys.box);
    handle.set_accuracy(1e-2);
    handle.tune(pos, q);
    std::vector<double> phi;
    std::vector<Vec3> field;
    fcs::RunOptions opts;
    opts.resort = true;
    opts.max_local = 1;  // too small on purpose
    fcs::RunResult rr = handle.run(pos, q, phi, field, opts);

    // Paper: if the arrays of at least one process are too small, the
    // original order and distribution is restored.
    EXPECT_FALSE(rr.resorted);
    EXPECT_FALSE(handle.last_run_resorted());
    ASSERT_EQ(pos.size(), pos_before.size());
    for (std::size_t i = 0; i < pos.size(); ++i)
      EXPECT_EQ(pos[i], pos_before[i]);
    EXPECT_EQ(phi.size(), pos_before.size());
    // resort_* must refuse now.
    std::vector<double> extra(pos.size(), 1.0);
    EXPECT_THROW(handle.resort_floats(extra, 1), fcs::Error);
  });
}

TEST(FcsMethods, MethodAandBSamePhysics) {
  const TestSystem sys = make_system(6);
  run_ranks(4, [&](mpi::Comm& c) {
    std::vector<Vec3> pos_a, pos_b;
    std::vector<double> q_a, q_b;
    deal(sys, c, pos_a, q_a);
    pos_b = pos_a;
    q_b = q_a;

    auto energy_with = [&](bool resort, std::vector<Vec3>& pos,
                           std::vector<double>& q) {
      fcs::Fcs handle(c, "pm");
      handle.set_common(sys.box);
      handle.set_accuracy(1e-3);
      handle.tune(pos, q);
      std::vector<double> phi;
      std::vector<Vec3> field;
      fcs::RunOptions opts;
      opts.resort = resort;
      handle.run(pos, q, phi, field, opts);
      double e = 0;
      for (std::size_t i = 0; i < q.size(); ++i) e += q[i] * phi[i];
      return 0.5 * c.allreduce(e, mpi::OpSum{});
    };
    const double ea = energy_with(false, pos_a, q_a);
    const double eb = energy_with(true, pos_b, q_b);
    EXPECT_NEAR(ea, eb, 1e-9 * std::abs(ea));
  });
}

TEST(FcsMethods, RepeatedMethodBRunsWithMovementHint) {
  // Simulates the paper's per-step loop: repeated method B runs where the
  // input is already in solver order; the solvers must engage their
  // max-movement optimizations and keep producing consistent results.
  const TestSystem sys = make_system(6);
  run_ranks(8, [&](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    deal(sys, c, pos, q);
    fcs::Fcs handle(c, "pm");
    handle.set_common(sys.box);
    handle.set_accuracy(1e-3);
    handle.tune(pos, q);
    std::vector<double> phi;
    std::vector<Vec3> field;
    fcs::RunOptions opts;
    opts.resort = true;

    handle.run(pos, q, phi, field, opts);
    double e_prev = 0;
    for (std::size_t i = 0; i < q.size(); ++i) e_prev += q[i] * phi[i];
    e_prev = 0.5 * c.allreduce(e_prev, mpi::OpSum{});

    fcs::Rng rng = fcs::Rng(77).stream(c.rank());
    for (int step = 0; step < 3; ++step) {
      // Tiny displacements.
      for (auto& x : pos) {
        x.x += rng.uniform(-0.01, 0.01);
        x.y += rng.uniform(-0.01, 0.01);
        x.z += rng.uniform(-0.01, 0.01);
        x = sys.box.wrap(x);
      }
      opts.max_particle_move = 0.02;
      fcs::RunResult rr = handle.run(pos, q, phi, field, opts);
      EXPECT_TRUE(rr.resorted);
      double e = 0;
      for (std::size_t i = 0; i < q.size(); ++i) e += q[i] * phi[i];
      e = 0.5 * c.allreduce(e, mpi::OpSum{});
      // Energy changes only slightly for tiny displacements.
      EXPECT_NEAR(e, e_prev, 0.05 * std::abs(e_prev));
      e_prev = e;
    }
  });
}

TEST(FcsTiming, PhaseTimesAreConsistent) {
  const TestSystem sys = make_system(5);
  auto net = std::make_shared<sim::SwitchedNetwork>();
  run_ranks(4, [&](mpi::Comm& c) {
    std::vector<Vec3> pos;
    std::vector<double> q;
    deal(sys, c, pos, q);
    fcs::Fcs handle(c, "pm");
    handle.set_common(sys.box);
    handle.set_accuracy(1e-2);
    handle.tune(pos, q);
    std::vector<double> phi;
    std::vector<Vec3> field;
    fcs::RunResult rr = handle.run(pos, q, phi, field);
    EXPECT_GT(rr.times.total, 0.0);
    EXPECT_GT(rr.times.sort, 0.0);
    EXPECT_GT(rr.times.restore, 0.0);
    EXPECT_EQ(rr.times.resort, 0.0);
    EXPECT_LE(rr.times.sort + rr.times.compute + rr.times.restore,
              rr.times.total * 1.0001);
  }, net);
}

// ---------------------------------------------------------------------------
// Overlapped (task-graph) fcs_run vs phased: bit-identity property test

namespace {

/// One full method-B run with three staged fields; returns every output
/// array for bitwise comparison.
struct TaskRunOut {
  std::vector<Vec3> pos;
  std::vector<double> q;
  std::vector<double> phi;
  std::vector<Vec3> field;
  std::vector<double> extraf;
  std::vector<std::int64_t> extrai;
  std::vector<Vec3> vel;
  bool resorted = false;
};

TaskRunOut run_staged(const TestSystem& sys, mpi::Comm& c,
                      const std::string& solver, int task_mode,
                      std::size_t slabs) {
  fcs::set_task_mode(task_mode);
  fcs::set_task_slabs(slabs);
  TaskRunOut o;
  deal(sys, c, o.pos, o.q);
  const std::size_t n = o.pos.size();
  o.extraf.resize(n);
  o.extrai.resize(n);
  o.vel.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    o.extraf[i] = 1e-3 * static_cast<double>(i) + c.rank();
    o.extrai[i] = 1000 * c.rank() + static_cast<std::int64_t>(i);
    o.vel[i] = Vec3{o.pos[i].y, o.pos[i].z, o.pos[i].x};
  }

  fcs::Fcs handle(c, solver);
  handle.set_common(sys.box);
  handle.set_accuracy(1e-3);
  if (solver == "pm") {
    // Skinny decompositions (3x1x1, 7x1x1): clamp the cutoff so the ghost
    // halo fits one subdomain, as the bench/service harnesses do.
    auto& pm_solver = dynamic_cast<pm::PmSolver&>(handle.solver());
    const std::vector<int> dims = mpi::dims_create(c.size(), 3);
    const double min_sub = sys.box.extent().x / dims[0];
    pm_solver.set_cutoff(std::min(4.8, 0.9 * min_sub));
  }
  handle.tune(o.pos, o.q);
  handle.stage_floats(o.extraf, 1);
  handle.stage_ints(o.extrai, 1);
  handle.stage_vec3(o.vel);
  EXPECT_EQ(handle.staged_field_count(), 3u);
  fcs::RunOptions opts;
  opts.resort = true;
  // fmm computes open-boundary interactions only; on the periodic test box
  // it runs with modeled compute (the redistribution machinery under test
  // is identical either way).
  opts.modeled_compute = solver == "fmm";
  const fcs::RunResult rr = handle.run(o.pos, o.q, o.phi, o.field, opts);
  EXPECT_EQ(handle.staged_field_count(), 0u);  // queue clears either way
  o.resorted = rr.resorted;
  return o;
}

template <class T>
void expect_bits_equal(const std::vector<T>& a, const std::vector<T>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << what;
  }
}

}  // namespace

TEST(FcsTaskOverlap, BitIdenticalToPhasedOnEveryCorner) {
  const TestSystem sys = make_system(5);
  for (const int p : {3, 7, 12}) {
    for (const char* solver : {"pm", "fmm"}) {
      for (const int net_kind : {0, 1}) {
        std::shared_ptr<const sim::NetworkModel> net;
        if (net_kind == 0)
          net = std::make_shared<sim::SwitchedNetwork>();
        else
          net = std::make_shared<sim::TorusNetwork>(
              sim::TorusNetwork::balanced_dims(p, 3));
        SCOPED_TRACE(std::string(solver) + " p=" + std::to_string(p) +
                     (net_kind == 0 ? " switched" : " torus"));
        run_ranks(p, [&, solver = std::string(solver)](mpi::Comm& c) {
          const TaskRunOut phased = run_staged(sys, c, solver, 0, 0);
          EXPECT_TRUE(phased.resorted);
          // Task mode, with both a single slab and a slab count that does
          // not divide the rank count (exercises uneven slab partitions).
          for (const std::size_t slabs : {std::size_t{1}, std::size_t{3}}) {
            const TaskRunOut t = run_staged(sys, c, solver, 1, slabs);
            EXPECT_EQ(t.resorted, phased.resorted);
            expect_bits_equal(t.pos, phased.pos, "positions");
            expect_bits_equal(t.q, phased.q, "charges");
            expect_bits_equal(t.phi, phased.phi, "potentials");
            expect_bits_equal(t.field, phased.field, "field");
            expect_bits_equal(t.extraf, phased.extraf, "staged floats");
            expect_bits_equal(t.extrai, phased.extrai, "staged ints");
            expect_bits_equal(t.vel, phased.vel, "staged vec3");
          }
          fcs::set_task_mode(-1);
          fcs::set_task_slabs(0);
        }, net);
      }
    }
  }
}

TEST(FcsTaskOverlap, TaskModeActuallyEngagesTheGraph) {
  const TestSystem sys = make_system(5);
  auto rec = std::make_shared<obs::Recorder>();
  sim::EngineConfig cfg;
  cfg.nranks = 4;
  cfg.network = std::make_shared<sim::SwitchedNetwork>();
  cfg.recorder = rec;
  sim::run_spmd(cfg, [&sys](sim::RankCtx& ctx) {
    mpi::Comm c = mpi::Comm::world(ctx);
    (void)run_staged(sys, c, "pm", 1, 2);
    fcs::set_task_mode(-1);
    fcs::set_task_slabs(0);
  });
  const auto reduced = rec->reduce_counters();
  const auto runs = reduced.find("fcs.task.runs");
  ASSERT_NE(runs, reduced.end());
  EXPECT_EQ(runs->second.totals.sum, 4.0);  // one overlapped run per rank
  EXPECT_NE(reduced.find("task.nodes"), reduced.end());
  EXPECT_NE(reduced.find("redist.fused.async_runs"), reduced.end());
}

TEST(FcsTaskOverlap, FallsBackToPhasedForUnstagedSolver) {
  // "direct" has no staged solve: FCS_TASK=1 must quietly run phased and
  // stay correct.
  const TestSystem sys = make_system(4);
  run_ranks(3, [&](mpi::Comm& c) {
    const TaskRunOut phased = run_staged(sys, c, "direct", 0, 0);
    const TaskRunOut t = run_staged(sys, c, "direct", 1, 2);
    fcs::set_task_mode(-1);
    fcs::set_task_slabs(0);
    expect_bits_equal(t.pos, phased.pos, "positions");
    expect_bits_equal(t.phi, phased.phi, "potentials");
    expect_bits_equal(t.vel, phased.vel, "staged vec3");
  });
}

}  // namespace
