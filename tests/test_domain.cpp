#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "domain/box.hpp"
#include "domain/cart_grid.hpp"
#include "domain/linked_cells.hpp"
#include "domain/morton.hpp"
#include "support/rng.hpp"

using domain::Box;
using domain::Vec3;

namespace {

TEST(Vec3Ops, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
  a[1] = 9;
  EXPECT_DOUBLE_EQ(a.y, 9.0);
}

TEST(BoxBasics, WrapPeriodic) {
  Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  const Vec3 w = box.wrap({12.5, -0.5, 30.0});
  EXPECT_DOUBLE_EQ(w.x, 2.5);
  EXPECT_DOUBLE_EQ(w.y, 9.5);
  EXPECT_DOUBLE_EQ(w.z, 0.0);
}

TEST(BoxBasics, WrapNonPeriodicLeavesAlone) {
  Box box({0, 0, 0}, {10, 10, 10}, {false, true, false});
  const Vec3 w = box.wrap({12.5, 12.5, -3.0});
  EXPECT_DOUBLE_EQ(w.x, 12.5);
  EXPECT_DOUBLE_EQ(w.y, 2.5);
  EXPECT_DOUBLE_EQ(w.z, -3.0);
}

TEST(BoxBasics, MinimumImage) {
  Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  const Vec3 d = box.minimum_image({9.5, 0, 0}, {0.5, 0, 0});
  EXPECT_DOUBLE_EQ(d.x, -1.0);  // across the boundary, not +9
  const Vec3 d2 = box.minimum_image({3, 0, 0}, {1, 0, 0});
  EXPECT_DOUBLE_EQ(d2.x, 2.0);
}

TEST(BoxBasics, OffsetBoxAndVolume) {
  Box box({-5, -5, -5}, {10, 20, 30}, {true, true, true});
  EXPECT_DOUBLE_EQ(box.volume(), 6000.0);
  EXPECT_TRUE(box.contains({0, 10, 20}));
  EXPECT_FALSE(box.contains({0, 16, 0}));
  const Vec3 n = box.normalized({0, 5, 10});
  EXPECT_DOUBLE_EQ(n.x, 0.5);
  EXPECT_DOUBLE_EQ(n.y, 0.5);
  EXPECT_DOUBLE_EQ(n.z, 0.5);
}

TEST(BoxBasics, FromBaseVectorsRejectsNonOrthorhombic) {
  EXPECT_NO_THROW(Box::from_base_vectors({0, 0, 0}, {10, 0, 0}, {0, 10, 0},
                                         {0, 0, 10}, {true, true, true}));
  EXPECT_THROW(Box::from_base_vectors({0, 0, 0}, {10, 1, 0}, {0, 10, 0},
                                      {0, 0, 10}, {true, true, true}),
               fcs::Error);
}

TEST(Morton, EncodeDecodeRoundTrip) {
  fcs::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng() & 0x1fffff);
    const auto y = static_cast<std::uint32_t>(rng() & 0x1fffff);
    const auto z = static_cast<std::uint32_t>(rng() & 0x1fffff);
    std::uint32_t dx, dy, dz;
    domain::morton_decode(domain::morton_encode(x, y, z), dx, dy, dz);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST(Morton, KnownSmallCodes) {
  EXPECT_EQ(domain::morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(domain::morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(domain::morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(domain::morton_encode(0, 0, 1), 4u);
  EXPECT_EQ(domain::morton_encode(1, 1, 1), 7u);
  EXPECT_EQ(domain::morton_encode(2, 0, 0), 8u);
}

TEST(Morton, ParentChildRelation) {
  const std::uint64_t code = domain::morton_encode(5, 9, 2);
  for (int c = 0; c < 8; ++c)
    EXPECT_EQ(domain::morton_parent(domain::morton_child(code, c)), code);
}

TEST(Morton, KeyRespectsLevelGranularity) {
  Box box({0, 0, 0}, {8, 8, 8}, {true, true, true});
  // Level 3: cells of size 1.
  EXPECT_EQ(domain::morton_key(box, 3, {0.5, 0.5, 0.5}),
            domain::morton_encode(0, 0, 0));
  EXPECT_EQ(domain::morton_key(box, 3, {7.5, 0.5, 0.5}),
            domain::morton_encode(7, 0, 0));
  // Level 1: cells of size 4; (5,6,7) -> cell (1,1,1).
  EXPECT_EQ(domain::morton_key(box, 1, {5, 6, 7}),
            domain::morton_encode(1, 1, 1));
  // Positions outside get wrapped first (periodic).
  EXPECT_EQ(domain::morton_key(box, 3, {8.5, 0.5, 0.5}),
            domain::morton_encode(0, 0, 0));
}

TEST(Morton, ZOrderLocality) {
  // Consecutive Morton codes at one level share parents at the next: codes
  // 8k..8k+7 all decode to one parent cell.
  for (std::uint64_t k = 0; k < 64; ++k) {
    std::set<std::uint64_t> parents;
    for (int c = 0; c < 8; ++c) parents.insert(domain::morton_parent(8 * k + c));
    EXPECT_EQ(parents.size(), 1u);
  }
}

TEST(CartGrid, RankPositionMapping) {
  Box box({0, 0, 0}, {12, 12, 12}, {true, true, true});
  domain::CartGrid grid(box, {3, 2, 2});
  EXPECT_EQ(grid.nranks(), 12);
  // Position in the first cell.
  EXPECT_EQ(grid.rank_of_position({1, 1, 1}), 0);
  // Coords round trip.
  for (int r = 0; r < grid.nranks(); ++r)
    EXPECT_EQ(grid.rank_of_coords(grid.coords_of_rank(r)), r);
  // Every position maps into the rank whose subdomain contains it.
  fcs::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.uniform(0, 12), rng.uniform(0, 12), rng.uniform(0, 12)};
    const int r = grid.rank_of_position(p);
    Vec3 lo, hi;
    grid.subdomain(r, lo, hi);
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], lo[d]);
      EXPECT_LT(p[d], hi[d]);
    }
  }
}

TEST(CartGrid, GhostTargetsInterior) {
  Box box({0, 0, 0}, {12, 12, 12}, {true, true, true});
  domain::CartGrid grid(box, {3, 3, 3});  // subdomains of 4
  // Deep inside a subdomain: no ghosts.
  EXPECT_TRUE(grid.ghost_targets({6, 6, 6}, 1.0).empty());
  // Near one face: exactly one ghost target.
  EXPECT_EQ(grid.ghost_targets({4.5, 6, 6}, 1.0).size(), 1u);
  // Near an edge (two faces): three targets (two faces + edge diagonal).
  EXPECT_EQ(grid.ghost_targets({4.5, 4.5, 6}, 1.0).size(), 3u);
  // Near a corner: seven targets.
  EXPECT_EQ(grid.ghost_targets({4.5, 4.5, 4.5}, 1.0).size(), 7u);
}

TEST(CartGrid, GhostTargetsPeriodicWrap) {
  Box box({0, 0, 0}, {12, 12, 12}, {true, true, true});
  domain::CartGrid grid(box, {3, 3, 3});
  // Particle at the global lower corner: ghosts wrap to the far side.
  const auto t = grid.ghost_targets({0.5, 6, 6}, 1.0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], grid.rank_of_coords({2, 1, 1}));
}

TEST(CartGrid, GhostTargetsNonPeriodicClip) {
  Box box({0, 0, 0}, {12, 12, 12}, {false, false, false});
  domain::CartGrid grid(box, {3, 3, 3});
  EXPECT_TRUE(grid.ghost_targets({0.5, 6, 6}, 1.0).empty());
}

TEST(CartGrid, HaloTooLargeThrows) {
  Box box({0, 0, 0}, {12, 12, 12}, {true, true, true});
  domain::CartGrid grid(box, {3, 3, 3});
  EXPECT_THROW(grid.ghost_targets({6, 6, 6}, 5.0), fcs::Error);
}

// Brute-force oracle for the linked cells.
TEST(LinkedCells, FindsExactlyTheCutoffPairs) {
  fcs::Rng rng(7);
  std::vector<Vec3> pos(300);
  for (auto& p : pos)
    p = {rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)};
  const double cutoff = 1.3;

  std::set<std::pair<std::size_t, std::size_t>> expected;
  for (std::size_t i = 0; i < pos.size(); ++i)
    for (std::size_t j = i + 1; j < pos.size(); ++j)
      if ((pos[i] - pos[j]).norm2() < cutoff * cutoff)
        expected.insert({i, j});

  domain::LinkedCells cells({0, 0, 0}, {10, 10, 10}, cutoff, pos);
  std::set<std::pair<std::size_t, std::size_t>> found;
  cells.for_each_pair_within(cutoff, [&](std::size_t i, std::size_t j,
                                         const Vec3& d, double r2) {
    EXPECT_LT(r2, cutoff * cutoff);
    EXPECT_NEAR((pos[i] - pos[j]).norm2(), d.norm2(), 1e-12);
    auto key = i < j ? std::make_pair(i, j) : std::make_pair(j, i);
    EXPECT_TRUE(found.insert(key).second) << "pair seen twice";
  });
  EXPECT_EQ(found, expected);
}

TEST(LinkedCells, NeighborQueryMatchesPairs) {
  fcs::Rng rng(8);
  std::vector<Vec3> pos(100);
  for (auto& p : pos)
    p = {rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 5)};
  const double cutoff = 1.0;
  domain::LinkedCells cells({0, 0, 0}, {5, 5, 5}, cutoff, pos);
  for (std::size_t i = 0; i < pos.size(); i += 7) {
    std::set<std::size_t> neigh;
    cells.for_each_neighbor_of(i, cutoff, [&](std::size_t j, const Vec3&, double) {
      neigh.insert(j);
    });
    std::set<std::size_t> expected;
    for (std::size_t j = 0; j < pos.size(); ++j)
      if (j != i && (pos[j] - pos[i]).norm2() < cutoff * cutoff)
        expected.insert(j);
    EXPECT_EQ(neigh, expected);
  }
}

TEST(LinkedCells, GhostsOutsideRegionAreClamped) {
  std::vector<Vec3> pos = {{-0.3, 1, 1}, {0.2, 1, 1}, {5.2, 1, 1}, {4.8, 1, 1}};
  domain::LinkedCells cells({0, 0, 0}, {5, 5, 5}, 1.0, pos);
  int pairs = 0;
  cells.for_each_pair_within(1.0, [&](std::size_t, std::size_t, const Vec3&,
                                      double) { ++pairs; });
  EXPECT_EQ(pairs, 2);  // (0,1) across the lower face, (2,3) across the upper
}

}  // namespace
