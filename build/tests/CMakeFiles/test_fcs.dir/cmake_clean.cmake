file(REMOVE_RECURSE
  "CMakeFiles/test_fcs.dir/test_fcs.cpp.o"
  "CMakeFiles/test_fcs.dir/test_fcs.cpp.o.d"
  "test_fcs"
  "test_fcs.pdb"
  "test_fcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
