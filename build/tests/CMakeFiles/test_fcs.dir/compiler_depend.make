# Empty compiler generated dependencies file for test_fcs.
# This may be replaced when dependencies are built.
