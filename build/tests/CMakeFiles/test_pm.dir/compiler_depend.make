# Empty compiler generated dependencies file for test_pm.
# This may be replaced when dependencies are built.
