# Empty compiler generated dependencies file for test_sortlib.
# This may be replaced when dependencies are built.
