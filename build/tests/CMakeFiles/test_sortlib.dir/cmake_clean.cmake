file(REMOVE_RECURSE
  "CMakeFiles/test_sortlib.dir/test_sortlib.cpp.o"
  "CMakeFiles/test_sortlib.dir/test_sortlib.cpp.o.d"
  "test_sortlib"
  "test_sortlib.pdb"
  "test_sortlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sortlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
