# Empty compiler generated dependencies file for test_fcs_c.
# This may be replaced when dependencies are built.
