file(REMOVE_RECURSE
  "CMakeFiles/test_fcs_c.dir/test_fcs_c.cpp.o"
  "CMakeFiles/test_fcs_c.dir/test_fcs_c.cpp.o.d"
  "test_fcs_c"
  "test_fcs_c.pdb"
  "test_fcs_c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcs_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
