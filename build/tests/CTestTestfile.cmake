# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_sortlib[1]_include.cmake")
include("/root/repo/build/tests/test_domain[1]_include.cmake")
include("/root/repo/build/tests/test_redist[1]_include.cmake")
include("/root/repo/build/tests/test_pm[1]_include.cmake")
include("/root/repo/build/tests/test_fmm[1]_include.cmake")
include("/root/repo/build/tests/test_fcs[1]_include.cmake")
include("/root/repo/build/tests/test_md[1]_include.cmake")
include("/root/repo/build/tests/test_fcs_c[1]_include.cmake")
