file(REMOVE_RECURSE
  "libfcs_sim.a"
)
