# Empty compiler generated dependencies file for fcs_sim.
# This may be replaced when dependencies are built.
