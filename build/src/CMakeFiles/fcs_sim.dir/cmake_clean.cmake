file(REMOVE_RECURSE
  "CMakeFiles/fcs_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/fcs_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/fcs_sim.dir/sim/fiber.cpp.o"
  "CMakeFiles/fcs_sim.dir/sim/fiber.cpp.o.d"
  "CMakeFiles/fcs_sim.dir/sim/mailbox.cpp.o"
  "CMakeFiles/fcs_sim.dir/sim/mailbox.cpp.o.d"
  "CMakeFiles/fcs_sim.dir/sim/network.cpp.o"
  "CMakeFiles/fcs_sim.dir/sim/network.cpp.o.d"
  "libfcs_sim.a"
  "libfcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
