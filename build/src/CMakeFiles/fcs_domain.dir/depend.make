# Empty dependencies file for fcs_domain.
# This may be replaced when dependencies are built.
