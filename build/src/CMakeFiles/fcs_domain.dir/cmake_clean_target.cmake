file(REMOVE_RECURSE
  "libfcs_domain.a"
)
