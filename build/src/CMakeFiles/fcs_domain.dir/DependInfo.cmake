
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domain/box.cpp" "src/CMakeFiles/fcs_domain.dir/domain/box.cpp.o" "gcc" "src/CMakeFiles/fcs_domain.dir/domain/box.cpp.o.d"
  "/root/repo/src/domain/cart_grid.cpp" "src/CMakeFiles/fcs_domain.dir/domain/cart_grid.cpp.o" "gcc" "src/CMakeFiles/fcs_domain.dir/domain/cart_grid.cpp.o.d"
  "/root/repo/src/domain/linked_cells.cpp" "src/CMakeFiles/fcs_domain.dir/domain/linked_cells.cpp.o" "gcc" "src/CMakeFiles/fcs_domain.dir/domain/linked_cells.cpp.o.d"
  "/root/repo/src/domain/morton.cpp" "src/CMakeFiles/fcs_domain.dir/domain/morton.cpp.o" "gcc" "src/CMakeFiles/fcs_domain.dir/domain/morton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
