file(REMOVE_RECURSE
  "CMakeFiles/fcs_domain.dir/domain/box.cpp.o"
  "CMakeFiles/fcs_domain.dir/domain/box.cpp.o.d"
  "CMakeFiles/fcs_domain.dir/domain/cart_grid.cpp.o"
  "CMakeFiles/fcs_domain.dir/domain/cart_grid.cpp.o.d"
  "CMakeFiles/fcs_domain.dir/domain/linked_cells.cpp.o"
  "CMakeFiles/fcs_domain.dir/domain/linked_cells.cpp.o.d"
  "CMakeFiles/fcs_domain.dir/domain/morton.cpp.o"
  "CMakeFiles/fcs_domain.dir/domain/morton.cpp.o.d"
  "libfcs_domain.a"
  "libfcs_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
