
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/cart.cpp" "src/CMakeFiles/fcs_minimpi.dir/minimpi/cart.cpp.o" "gcc" "src/CMakeFiles/fcs_minimpi.dir/minimpi/cart.cpp.o.d"
  "/root/repo/src/minimpi/collectives.cpp" "src/CMakeFiles/fcs_minimpi.dir/minimpi/collectives.cpp.o" "gcc" "src/CMakeFiles/fcs_minimpi.dir/minimpi/collectives.cpp.o.d"
  "/root/repo/src/minimpi/comm.cpp" "src/CMakeFiles/fcs_minimpi.dir/minimpi/comm.cpp.o" "gcc" "src/CMakeFiles/fcs_minimpi.dir/minimpi/comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
