# Empty dependencies file for fcs_minimpi.
# This may be replaced when dependencies are built.
