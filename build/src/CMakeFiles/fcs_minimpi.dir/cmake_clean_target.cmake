file(REMOVE_RECURSE
  "libfcs_minimpi.a"
)
