file(REMOVE_RECURSE
  "CMakeFiles/fcs_minimpi.dir/minimpi/cart.cpp.o"
  "CMakeFiles/fcs_minimpi.dir/minimpi/cart.cpp.o.d"
  "CMakeFiles/fcs_minimpi.dir/minimpi/collectives.cpp.o"
  "CMakeFiles/fcs_minimpi.dir/minimpi/collectives.cpp.o.d"
  "CMakeFiles/fcs_minimpi.dir/minimpi/comm.cpp.o"
  "CMakeFiles/fcs_minimpi.dir/minimpi/comm.cpp.o.d"
  "libfcs_minimpi.a"
  "libfcs_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
