file(REMOVE_RECURSE
  "CMakeFiles/fcs_redist.dir/redist/atasp.cpp.o"
  "CMakeFiles/fcs_redist.dir/redist/atasp.cpp.o.d"
  "CMakeFiles/fcs_redist.dir/redist/neighborhood.cpp.o"
  "CMakeFiles/fcs_redist.dir/redist/neighborhood.cpp.o.d"
  "CMakeFiles/fcs_redist.dir/redist/resort.cpp.o"
  "CMakeFiles/fcs_redist.dir/redist/resort.cpp.o.d"
  "libfcs_redist.a"
  "libfcs_redist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_redist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
