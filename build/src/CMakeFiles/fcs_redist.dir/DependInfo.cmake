
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redist/atasp.cpp" "src/CMakeFiles/fcs_redist.dir/redist/atasp.cpp.o" "gcc" "src/CMakeFiles/fcs_redist.dir/redist/atasp.cpp.o.d"
  "/root/repo/src/redist/neighborhood.cpp" "src/CMakeFiles/fcs_redist.dir/redist/neighborhood.cpp.o" "gcc" "src/CMakeFiles/fcs_redist.dir/redist/neighborhood.cpp.o.d"
  "/root/repo/src/redist/resort.cpp" "src/CMakeFiles/fcs_redist.dir/redist/resort.cpp.o" "gcc" "src/CMakeFiles/fcs_redist.dir/redist/resort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcs_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
