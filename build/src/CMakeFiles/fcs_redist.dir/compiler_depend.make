# Empty compiler generated dependencies file for fcs_redist.
# This may be replaced when dependencies are built.
