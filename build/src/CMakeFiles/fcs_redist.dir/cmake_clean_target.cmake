file(REMOVE_RECURSE
  "libfcs_redist.a"
)
