# Empty dependencies file for fcs_core.
# This may be replaced when dependencies are built.
