file(REMOVE_RECURSE
  "CMakeFiles/fcs_core.dir/fcs/fcs.cpp.o"
  "CMakeFiles/fcs_core.dir/fcs/fcs.cpp.o.d"
  "CMakeFiles/fcs_core.dir/fcs/fcs_c.cpp.o"
  "CMakeFiles/fcs_core.dir/fcs/fcs_c.cpp.o.d"
  "CMakeFiles/fcs_core.dir/fcs/solver_registry.cpp.o"
  "CMakeFiles/fcs_core.dir/fcs/solver_registry.cpp.o.d"
  "libfcs_core.a"
  "libfcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
