file(REMOVE_RECURSE
  "libfcs_core.a"
)
