file(REMOVE_RECURSE
  "CMakeFiles/fcs_pm.dir/pm/charge_grid.cpp.o"
  "CMakeFiles/fcs_pm.dir/pm/charge_grid.cpp.o.d"
  "CMakeFiles/fcs_pm.dir/pm/direct.cpp.o"
  "CMakeFiles/fcs_pm.dir/pm/direct.cpp.o.d"
  "CMakeFiles/fcs_pm.dir/pm/dist_fft.cpp.o"
  "CMakeFiles/fcs_pm.dir/pm/dist_fft.cpp.o.d"
  "CMakeFiles/fcs_pm.dir/pm/ewald.cpp.o"
  "CMakeFiles/fcs_pm.dir/pm/ewald.cpp.o.d"
  "CMakeFiles/fcs_pm.dir/pm/fft.cpp.o"
  "CMakeFiles/fcs_pm.dir/pm/fft.cpp.o.d"
  "CMakeFiles/fcs_pm.dir/pm/pm_solver.cpp.o"
  "CMakeFiles/fcs_pm.dir/pm/pm_solver.cpp.o.d"
  "libfcs_pm.a"
  "libfcs_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
