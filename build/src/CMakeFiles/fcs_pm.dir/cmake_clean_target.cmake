file(REMOVE_RECURSE
  "libfcs_pm.a"
)
