# Empty dependencies file for fcs_pm.
# This may be replaced when dependencies are built.
