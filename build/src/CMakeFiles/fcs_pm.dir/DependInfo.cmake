
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/charge_grid.cpp" "src/CMakeFiles/fcs_pm.dir/pm/charge_grid.cpp.o" "gcc" "src/CMakeFiles/fcs_pm.dir/pm/charge_grid.cpp.o.d"
  "/root/repo/src/pm/direct.cpp" "src/CMakeFiles/fcs_pm.dir/pm/direct.cpp.o" "gcc" "src/CMakeFiles/fcs_pm.dir/pm/direct.cpp.o.d"
  "/root/repo/src/pm/dist_fft.cpp" "src/CMakeFiles/fcs_pm.dir/pm/dist_fft.cpp.o" "gcc" "src/CMakeFiles/fcs_pm.dir/pm/dist_fft.cpp.o.d"
  "/root/repo/src/pm/ewald.cpp" "src/CMakeFiles/fcs_pm.dir/pm/ewald.cpp.o" "gcc" "src/CMakeFiles/fcs_pm.dir/pm/ewald.cpp.o.d"
  "/root/repo/src/pm/fft.cpp" "src/CMakeFiles/fcs_pm.dir/pm/fft.cpp.o" "gcc" "src/CMakeFiles/fcs_pm.dir/pm/fft.cpp.o.d"
  "/root/repo/src/pm/pm_solver.cpp" "src/CMakeFiles/fcs_pm.dir/pm/pm_solver.cpp.o" "gcc" "src/CMakeFiles/fcs_pm.dir/pm/pm_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcs_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_redist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_sortlib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
