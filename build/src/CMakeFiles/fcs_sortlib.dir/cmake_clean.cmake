file(REMOVE_RECURSE
  "CMakeFiles/fcs_sortlib.dir/sortlib/local_sort.cpp.o"
  "CMakeFiles/fcs_sortlib.dir/sortlib/local_sort.cpp.o.d"
  "CMakeFiles/fcs_sortlib.dir/sortlib/merge_sort.cpp.o"
  "CMakeFiles/fcs_sortlib.dir/sortlib/merge_sort.cpp.o.d"
  "CMakeFiles/fcs_sortlib.dir/sortlib/partition_sort.cpp.o"
  "CMakeFiles/fcs_sortlib.dir/sortlib/partition_sort.cpp.o.d"
  "libfcs_sortlib.a"
  "libfcs_sortlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_sortlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
