file(REMOVE_RECURSE
  "libfcs_sortlib.a"
)
