# Empty dependencies file for fcs_sortlib.
# This may be replaced when dependencies are built.
