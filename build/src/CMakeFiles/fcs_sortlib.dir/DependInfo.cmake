
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sortlib/local_sort.cpp" "src/CMakeFiles/fcs_sortlib.dir/sortlib/local_sort.cpp.o" "gcc" "src/CMakeFiles/fcs_sortlib.dir/sortlib/local_sort.cpp.o.d"
  "/root/repo/src/sortlib/merge_sort.cpp" "src/CMakeFiles/fcs_sortlib.dir/sortlib/merge_sort.cpp.o" "gcc" "src/CMakeFiles/fcs_sortlib.dir/sortlib/merge_sort.cpp.o.d"
  "/root/repo/src/sortlib/partition_sort.cpp" "src/CMakeFiles/fcs_sortlib.dir/sortlib/partition_sort.cpp.o" "gcc" "src/CMakeFiles/fcs_sortlib.dir/sortlib/partition_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcs_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
