file(REMOVE_RECURSE
  "libfcs_support.a"
)
