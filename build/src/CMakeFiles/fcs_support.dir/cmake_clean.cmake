file(REMOVE_RECURSE
  "CMakeFiles/fcs_support.dir/support/error.cpp.o"
  "CMakeFiles/fcs_support.dir/support/error.cpp.o.d"
  "CMakeFiles/fcs_support.dir/support/rng.cpp.o"
  "CMakeFiles/fcs_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/fcs_support.dir/support/table.cpp.o"
  "CMakeFiles/fcs_support.dir/support/table.cpp.o.d"
  "libfcs_support.a"
  "libfcs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
