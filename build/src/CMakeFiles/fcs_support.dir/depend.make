# Empty dependencies file for fcs_support.
# This may be replaced when dependencies are built.
