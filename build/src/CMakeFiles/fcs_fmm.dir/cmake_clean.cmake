file(REMOVE_RECURSE
  "CMakeFiles/fcs_fmm.dir/fmm/fmm_solver.cpp.o"
  "CMakeFiles/fcs_fmm.dir/fmm/fmm_solver.cpp.o.d"
  "CMakeFiles/fcs_fmm.dir/fmm/harmonics.cpp.o"
  "CMakeFiles/fcs_fmm.dir/fmm/harmonics.cpp.o.d"
  "CMakeFiles/fcs_fmm.dir/fmm/multipole.cpp.o"
  "CMakeFiles/fcs_fmm.dir/fmm/multipole.cpp.o.d"
  "CMakeFiles/fcs_fmm.dir/fmm/octree.cpp.o"
  "CMakeFiles/fcs_fmm.dir/fmm/octree.cpp.o.d"
  "libfcs_fmm.a"
  "libfcs_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
