file(REMOVE_RECURSE
  "libfcs_fmm.a"
)
