# Empty compiler generated dependencies file for fcs_fmm.
# This may be replaced when dependencies are built.
