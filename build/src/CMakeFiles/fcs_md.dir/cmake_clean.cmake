file(REMOVE_RECURSE
  "CMakeFiles/fcs_md.dir/md/integrator.cpp.o"
  "CMakeFiles/fcs_md.dir/md/integrator.cpp.o.d"
  "CMakeFiles/fcs_md.dir/md/simulation.cpp.o"
  "CMakeFiles/fcs_md.dir/md/simulation.cpp.o.d"
  "CMakeFiles/fcs_md.dir/md/system.cpp.o"
  "CMakeFiles/fcs_md.dir/md/system.cpp.o.d"
  "libfcs_md.a"
  "libfcs_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcs_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
