
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/integrator.cpp" "src/CMakeFiles/fcs_md.dir/md/integrator.cpp.o" "gcc" "src/CMakeFiles/fcs_md.dir/md/integrator.cpp.o.d"
  "/root/repo/src/md/simulation.cpp" "src/CMakeFiles/fcs_md.dir/md/simulation.cpp.o" "gcc" "src/CMakeFiles/fcs_md.dir/md/simulation.cpp.o.d"
  "/root/repo/src/md/system.cpp" "src/CMakeFiles/fcs_md.dir/md/system.cpp.o" "gcc" "src/CMakeFiles/fcs_md.dir/md/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_redist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_sortlib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
