# Empty compiler generated dependencies file for fcs_md.
# This may be replaced when dependencies are built.
