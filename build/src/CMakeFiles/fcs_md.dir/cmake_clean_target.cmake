file(REMOVE_RECURSE
  "libfcs_md.a"
)
