file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_timesteps_grid.dir/bench_fig8_timesteps_grid.cpp.o"
  "CMakeFiles/bench_fig8_timesteps_grid.dir/bench_fig8_timesteps_grid.cpp.o.d"
  "bench_fig8_timesteps_grid"
  "bench_fig8_timesteps_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_timesteps_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
