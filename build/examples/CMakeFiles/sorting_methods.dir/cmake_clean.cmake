file(REMOVE_RECURSE
  "CMakeFiles/sorting_methods.dir/sorting_methods.cpp.o"
  "CMakeFiles/sorting_methods.dir/sorting_methods.cpp.o.d"
  "sorting_methods"
  "sorting_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
