# Empty compiler generated dependencies file for sorting_methods.
# This may be replaced when dependencies are built.
