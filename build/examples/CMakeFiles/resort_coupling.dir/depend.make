# Empty dependencies file for resort_coupling.
# This may be replaced when dependencies are built.
