file(REMOVE_RECURSE
  "CMakeFiles/resort_coupling.dir/resort_coupling.cpp.o"
  "CMakeFiles/resort_coupling.dir/resort_coupling.cpp.o.d"
  "resort_coupling"
  "resort_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resort_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
