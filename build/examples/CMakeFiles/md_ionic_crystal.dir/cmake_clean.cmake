file(REMOVE_RECURSE
  "CMakeFiles/md_ionic_crystal.dir/md_ionic_crystal.cpp.o"
  "CMakeFiles/md_ionic_crystal.dir/md_ionic_crystal.cpp.o.d"
  "md_ionic_crystal"
  "md_ionic_crystal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_ionic_crystal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
