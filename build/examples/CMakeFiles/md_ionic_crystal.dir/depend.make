# Empty dependencies file for md_ionic_crystal.
# This may be replaced when dependencies are built.
